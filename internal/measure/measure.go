// Package measure implements the paper's MOAS measurement pipeline
// (§3.1): it scans a series of daily routing-table dumps, extracts the
// Multiple-Origin-AS cases, and produces the statistics behind Figure 4
// (daily conflict counts), Figure 5 (case-duration histogram), and the
// summary numbers quoted in §3 and §4.3 (one-day-case fraction,
// origin-set size distribution, multi-origin route count).
package measure

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/astypes"
	"repro/internal/routegen"
	"repro/internal/stats"
)

// DailyCount is one point of Figure 4.
type DailyCount struct {
	Day   int
	Date  time.Time
	Cases int
}

// Analysis accumulates MOAS statistics over a dump series. Feed it
// dumps in day order via Observe, then read the reports.
type Analysis struct {
	daily []DailyCount
	// durationDays[prefix] counts the total number of days the prefix
	// had multiple origins, "regardless of whether the days were
	// continuous and regardless of whether the same set of origins was
	// involved" (§3.1).
	durationDays map[astypes.Prefix]int
	// originSizes records, per observed (prefix, day), the origin-set
	// size; used for the two-vs-three origin split.
	originSizes *stats.Histogram
	// maxOrigins[prefix] tracks the largest origin set ever seen.
	maxOrigins map[astypes.Prefix]int

	// Per-day scratch reused across Observe calls: prefix -> slot in
	// scratchSets. Replaces the old map[Prefix]map[ASN]struct{} so the
	// per-day pass allocates nothing once warm.
	scratchIdx  map[astypes.Prefix]int32
	scratchSets []originSet
}

// originSet is a small dedup set of origin ASes. Origin sets are tiny
// (the paper: 96% have two, almost all the rest three), so the common
// case lives inline; spill keeps larger sets correct.
type originSet struct {
	count  int32
	inline [8]astypes.ASN
	spill  []astypes.ASN
}

func (s *originSet) add(asn astypes.ASN) {
	n := int(s.count)
	if n > len(s.inline) {
		n = len(s.inline)
	}
	for i := 0; i < n; i++ {
		if s.inline[i] == asn {
			return
		}
	}
	for _, a := range s.spill {
		if a == asn {
			return
		}
	}
	if int(s.count) < len(s.inline) {
		s.inline[s.count] = asn
	} else {
		s.spill = append(s.spill, asn)
	}
	s.count++
}

// NewAnalysis returns an empty analysis.
func NewAnalysis() *Analysis {
	return &Analysis{
		durationDays: make(map[astypes.Prefix]int),
		originSizes:  stats.NewHistogram(),
		maxOrigins:   make(map[astypes.Prefix]int),
	}
}

// Observe ingests one day's dump. The per-day origin grouping uses a
// flat accumulator (one index map plus a slot slice, both reused
// across days) rather than a freshly built map of maps; results are
// identical to ObserveBaseline.
func (a *Analysis) Observe(d *routegen.Dump) {
	a.beginDay()
	for _, e := range d.Entries {
		if origin, ok := e.Path.Origin(); ok {
			a.noteOrigin(e.Prefix, origin)
		}
	}
	a.endDay(d.Day, d.Date)
}

// beginDay resets the per-day scratch; every (prefix, origin) sighting
// of the day then flows through noteOrigin, and endDay folds the day
// into the running statistics. Observe and the MRT adapter share this
// accumulator so synthetic dumps and real archives are measured by the
// exact same code.
func (a *Analysis) beginDay() {
	if a.scratchIdx == nil {
		a.scratchIdx = make(map[astypes.Prefix]int32, 4096)
	} else {
		clear(a.scratchIdx)
	}
	a.scratchSets = a.scratchSets[:0]
}

// noteOrigin records one (prefix, origin) sighting for the current day.
func (a *Analysis) noteOrigin(prefix astypes.Prefix, origin astypes.ASN) {
	i, ok := a.scratchIdx[prefix]
	if !ok {
		i = int32(len(a.scratchSets))
		a.scratchSets = append(a.scratchSets, originSet{})
		a.scratchIdx[prefix] = i
	}
	a.scratchSets[i].add(origin)
}

// endDay folds the day's accumulated origin sets into the running
// statistics and appends the daily case count.
func (a *Analysis) endDay(day int, date time.Time) {
	cases := 0
	for prefix, i := range a.scratchIdx {
		n := int(a.scratchSets[i].count)
		if n < 2 {
			continue
		}
		cases++
		a.durationDays[prefix]++
		a.originSizes.Add(n)
		if n > a.maxOrigins[prefix] {
			a.maxOrigins[prefix] = n
		}
	}
	a.daily = append(a.daily, DailyCount{Day: day, Date: date, Cases: cases})
}

// ObserveBaseline is the pre-optimization Observe, kept as the
// benchmark baseline: it rebuilds a map-of-maps every day.
func (a *Analysis) ObserveBaseline(d *routegen.Dump) {
	origins := make(map[astypes.Prefix]map[astypes.ASN]struct{})
	for _, e := range d.Entries {
		origin, ok := e.Path.Origin()
		if !ok {
			continue
		}
		set, ok := origins[e.Prefix]
		if !ok {
			set = make(map[astypes.ASN]struct{}, 2)
			origins[e.Prefix] = set
		}
		set[origin] = struct{}{}
	}
	cases := 0
	for prefix, set := range origins {
		if len(set) < 2 {
			continue
		}
		cases++
		a.durationDays[prefix]++
		a.originSizes.Add(len(set))
		if len(set) > a.maxOrigins[prefix] {
			a.maxOrigins[prefix] = len(set)
		}
	}
	a.daily = append(a.daily, DailyCount{Day: d.Day, Date: d.Date, Cases: cases})
}

// Daily returns the Figure 4 series in observation order.
func (a *Analysis) Daily() []DailyCount {
	out := make([]DailyCount, len(a.daily))
	copy(out, a.daily)
	return out
}

// DurationHistogram returns the Figure 5 histogram: number of MOAS
// cases (prefixes) by total duration in days.
func (a *Analysis) DurationHistogram() *stats.Histogram {
	h := stats.NewHistogram()
	for _, days := range a.durationDays {
		h.Add(days)
	}
	return h
}

// Summary is the paper's §3 headline numbers.
type Summary struct {
	// TotalCases is the number of distinct prefixes that ever had
	// multiple origins.
	TotalCases int
	// OneDayCases and OneDayFraction cover cases whose total duration
	// was exactly one day (paper: 1373, 35.9%).
	OneDayCases    int
	OneDayFraction float64
	// MedianDailyByYear maps calendar year to the median daily case
	// count (paper: 683 in 1998, 1294 in 2001).
	MedianDailyByYear map[int]float64
	// MaxDaily and MaxDailyDate locate the largest spike (paper:
	// 1998-04-07).
	MaxDaily     int
	MaxDailyDate time.Time
	// TwoOriginFraction and ThreeOriginFraction are over observed
	// (prefix, day) cases (paper: 96.14% and 2.7%).
	TwoOriginFraction   float64
	ThreeOriginFraction float64
	// MaxSimultaneousMultiOrigin is the largest number of multi-origin
	// prefixes present on a single day (paper §4.3: "less than 3,000").
	MaxSimultaneousMultiOrigin int
}

// Summarize computes the summary statistics.
func (a *Analysis) Summarize() Summary {
	s := Summary{
		TotalCases:        len(a.durationDays),
		MedianDailyByYear: make(map[int]float64),
	}
	for _, days := range a.durationDays {
		if days == 1 {
			s.OneDayCases++
		}
	}
	if s.TotalCases > 0 {
		s.OneDayFraction = float64(s.OneDayCases) / float64(s.TotalCases)
	}
	byYear := make(map[int][]int)
	for _, dc := range a.daily {
		byYear[dc.Date.Year()] = append(byYear[dc.Date.Year()], dc.Cases)
		if dc.Cases > s.MaxDaily {
			s.MaxDaily = dc.Cases
			s.MaxDailyDate = dc.Date
		}
	}
	// Both report the maximum of the same daily series; track it once.
	s.MaxSimultaneousMultiOrigin = s.MaxDaily
	for year, counts := range byYear {
		s.MedianDailyByYear[year] = stats.MedianInts(counts)
	}
	s.TwoOriginFraction = a.originSizes.Fraction(2)
	s.ThreeOriginFraction = a.originSizes.Fraction(3)
	return s
}

// String renders the summary in the shape of the paper's §3 prose.
func (s Summary) String() string {
	out := fmt.Sprintf("total MOAS cases: %d\n", s.TotalCases)
	out += fmt.Sprintf("one-day cases: %d (%.1f%%)\n", s.OneDayCases, 100*s.OneDayFraction)
	for _, year := range sortedYears(s.MedianDailyByYear) {
		out += fmt.Sprintf("median daily cases %d: %.0f\n", year, s.MedianDailyByYear[year])
	}
	out += fmt.Sprintf("max daily cases: %d on %s\n", s.MaxDaily, s.MaxDailyDate.Format("2006-01-02"))
	out += fmt.Sprintf("origin-set sizes: %.2f%% two, %.2f%% three\n",
		100*s.TwoOriginFraction, 100*s.ThreeOriginFraction)
	return out
}

func sortedYears(m map[int]float64) []int {
	years := make([]int, 0, len(m))
	for y := range m {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// Run executes the full pipeline over a generator's series.
func Run(g *routegen.Generator) (*Analysis, error) {
	a := NewAnalysis()
	if err := g.Series(func(d *routegen.Dump) error {
		a.Observe(d)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	return a, nil
}

// RunParallel is Run with dump generation fanned out over a bounded
// worker pool (see routegen.SeriesParallel). Observe still runs on the
// calling goroutine in strict day order, so the resulting Analysis is
// identical to Run's. workers <= 1 degrades to the serial pipeline;
// workers == 0 should be resolved to GOMAXPROCS by the caller.
func RunParallel(g *routegen.Generator, workers int) (*Analysis, error) {
	a := NewAnalysis()
	if err := g.SeriesParallel(workers, func(d *routegen.Dump) error {
		a.Observe(d)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("measure: %w", err)
	}
	return a, nil
}
