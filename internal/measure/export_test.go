package measure

import (
	"encoding/csv"
	"strings"
	"testing"
)

func exportAnalysis(t *testing.T) *Analysis {
	t.Helper()
	a := NewAnalysis()
	a.Observe(dump(0,
		entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2),
		entry("20.0.0.0/8", 3), entry("20.0.0.0/8", 4),
	))
	a.Observe(dump(1, entry("10.0.0.0/8", 1), entry("10.0.0.0/8", 2)))
	return a
}

func TestWriteFigure4CSV(t *testing.T) {
	var sb strings.Builder
	if err := exportAnalysis(t).WriteFigure4CSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[0][0] != "day" || records[1][2] != "2" || records[2][2] != "1" {
		t.Errorf("records = %v", records)
	}
	if records[1][1] != "1997-11-08" {
		t.Errorf("date column = %q", records[1][1])
	}
}

func TestWriteFigure5CSV(t *testing.T) {
	var sb strings.Builder
	if err := exportAnalysis(t).WriteFigure5CSV(&sb); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Durations: 10/8 lasted 2 days, 20/8 lasted 1 day.
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[1][0] != "1" || records[1][1] != "1" {
		t.Errorf("bin 1 = %v", records[1])
	}
	if records[2][0] != "2" || records[2][1] != "1" {
		t.Errorf("bin 2 = %v", records[2])
	}
}
