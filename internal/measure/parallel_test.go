package measure

import (
	"reflect"
	"testing"

	"repro/internal/astypes"
	"repro/internal/routegen"
)

// reducedConfig trims the study window enough to afford several full
// pipeline runs (including under -race) while keeping every case kind
// and both mass-fault events in play.
func reducedConfig() routegen.Config {
	cfg := routegen.DefaultConfig()
	cfg.Days = 200
	cfg.SingleOriginPrefixes = 800
	cfg.BaseCases = 120
	cfg.GrowthCases = 80
	cfg.ChurnCases = 60
	cfg.ShortFaultCases = 40
	cfg.Events = []routegen.FaultEvent{
		{Day: 60, Duration: 1, FaultAS: 8584, Prefixes: 300},
		{Day: 120, Duration: 1, RepeatOffsets: []int{4}, FaultAS: 15412, UpstreamAS: 3561, Prefixes: 150},
	}
	return cfg
}

func analysisReports(t *testing.T, a *Analysis) (Summary, []DailyCount, map[int]int) {
	t.Helper()
	durations := make(map[int]int)
	for _, bin := range a.DurationHistogram().Bins() {
		durations[bin.Value] = bin.Count
	}
	return a.Summarize(), a.Daily(), durations
}

// TestObserveMatchesBaseline pins the flat accumulator to the
// map-of-maps implementation it replaced: identical statistics over
// the same dump series.
func TestObserveMatchesBaseline(t *testing.T) {
	g, err := routegen.New(reducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	flat, baseline := NewAnalysis(), NewAnalysis()
	if err := g.Series(func(d *routegen.Dump) error {
		flat.Observe(d)
		baseline.ObserveBaseline(d)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	fs, fd, fh := analysisReports(t, flat)
	bs, bd, bh := analysisReports(t, baseline)
	if !reflect.DeepEqual(fs, bs) {
		t.Errorf("summary diverged:\nflat     %+v\nbaseline %+v", fs, bs)
	}
	if !reflect.DeepEqual(fd, bd) {
		t.Error("daily series diverged")
	}
	if !reflect.DeepEqual(fh, bh) {
		t.Error("duration histogram diverged")
	}
}

// TestRunParallelMatchesRun is the measurement-study determinism gate:
// the parallel pipeline must produce an Analysis indistinguishable
// from the serial one, for any worker count.
func TestRunParallelMatchesRun(t *testing.T) {
	g, err := routegen.New(reducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(g)
	if err != nil {
		t.Fatal(err)
	}
	ss, sd, sh := analysisReports(t, serial)
	for _, workers := range []int{1, 2, 8} {
		par, err := RunParallel(g, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ps, pd, ph := analysisReports(t, par)
		if !reflect.DeepEqual(ps, ss) {
			t.Errorf("workers=%d summary diverged:\nparallel %+v\nserial   %+v", workers, ps, ss)
		}
		if !reflect.DeepEqual(pd, sd) {
			t.Errorf("workers=%d daily series diverged", workers)
		}
		if !reflect.DeepEqual(ph, sh) {
			t.Errorf("workers=%d duration histogram diverged", workers)
		}
	}
}

// TestObserveOriginSpill covers origin sets larger than the inline
// capacity of the flat accumulator's small-set representation.
func TestObserveOriginSpill(t *testing.T) {
	entries := make([]routegen.Entry, 0, 24)
	for i := 0; i < 12; i++ {
		// 12 distinct origins, each announced twice.
		origin := astypes.ASN(1000 + i)
		entries = append(entries, entry("10.0.0.0/8", origin), entry("10.0.0.0/8", origin))
	}
	flat, baseline := NewAnalysis(), NewAnalysis()
	flat.Observe(dump(0, entries...))
	baseline.ObserveBaseline(dump(0, entries...))
	fs, _, _ := analysisReports(t, flat)
	bs, _, _ := analysisReports(t, baseline)
	if !reflect.DeepEqual(fs, bs) {
		t.Errorf("spill summary diverged:\nflat     %+v\nbaseline %+v", fs, bs)
	}
	if n := flat.maxOrigins[entries[0].Prefix]; n != 12 {
		t.Errorf("max origins = %d, want 12", n)
	}
}
