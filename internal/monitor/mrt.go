// MRT replay for the off-line monitor: feed an archived table dump and
// update trace through the same session→RIB→alarm path a live feed
// takes, with each ingested announcement carrying its source record's
// span so the flight recorder's forensic bundles point back into the
// archive.

package monitor

import (
	"errors"
	"io"

	"repro/internal/mrt"
	"repro/internal/obs"
)

// ReplayResult reports what one MRT replay consumed.
type ReplayResult struct {
	// Stats are the reader's counters.
	Stats mrt.Stats
	// Malformed counts records whose bodies failed to decode and were
	// skipped (the framing stayed intact, so the replay continued).
	Malformed uint64
}

// ReplayMRT streams the MRT archive in r through the monitor: RIB
// entries and announced NLRI become ObserveEntrySpan calls, update
// withdrawals retract state, and every announcement carries the span
// of the record it came from. Malformed records are skipped and
// counted; a terminal framing error aborts with the partial result.
func (m *Monitor) ReplayMRT(vantage string, r io.Reader) (ReplayResult, error) {
	return m.ReplayMRTFunc(vantage, r, nil)
}

// ReplayMRTFunc is ReplayMRT with a hook that sees every successfully
// decoded record before the monitor ingests it — the seam callers use
// to mirror the replay into a second consumer (the collector RIB, a
// progress meter). The record aliases reader scratch; the hook must not
// retain it.
func (m *Monitor) ReplayMRTFunc(vantage string, r io.Reader, hook func(*mrt.Record)) (ReplayResult, error) {
	var res ReplayResult
	rd, err := mrt.NewReader(r)
	if err != nil {
		return res, err
	}
	for {
		// Ingest T0 for replay is the instant the record is pulled from
		// the archive, so a replay's stage breakdown mirrors the live
		// feed's (decode = record parse, rib = hook mirror, validate/
		// alarm in the monitor).
		st := m.obs.Start(0)
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			res.Stats = rd.Stats()
			return res, nil
		}
		if err != nil {
			if mrt.IsTerminal(err) {
				res.Stats = rd.Stats()
				return res, err
			}
			res.Malformed++
			continue
		}
		st.Span = rec.Span
		m.obs.Cross(&st, obs.StageDecode)
		if hook != nil {
			hook(rec)
			// The hook is the RIB-mirror seam (collector Inject).
			m.obs.Cross(&st, obs.StageRIB)
		}
		switch rec.Kind {
		case mrt.KindRIB:
			for i := range rec.Entries {
				e := &rec.Entries[i]
				m.ObserveEntryStamp(vantage, rec.Prefix, e.Path, e.Communities, &st)
			}
		case mrt.KindMessage:
			if rec.Update != nil {
				m.ObserveUpdateStamp(vantage, rec.Update, &st)
			}
		}
	}
}
