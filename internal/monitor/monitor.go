// Package monitor implements the paper's off-line deployment path
// (§4.2): "one could deploy the MOAS List checking quickly in the
// operational Internet via an off-line monitoring process, which
// periodically downloads the BGP routing messages and checks the MOAS
// List consistency from multiple peers."
//
// The Monitor ingests routing-table snapshots (or live UPDATE feeds)
// from any number of vantage points, maintains the per-prefix MOAS view
// across all of them, and emits alarms on inconsistency — without
// touching any router. It is the same core.Checker the in-band speaker
// uses, fed from collected data instead of live sessions.
package monitor

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/routegen"
	"repro/internal/rpki"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Alarm is one monitor finding: a prefix whose announcements across the
// monitored peers carry inconsistent MOAS lists (or an origin outside
// its own list).
type Alarm struct {
	Conflict core.Conflict
	// Vantage identifies the feed that contributed the conflicting
	// announcement.
	Vantage string
	// Class is the RPKI/ROV cross-validated severity (rpki.Classify);
	// without a configured store it degrades to the MOAS-provenance
	// classes (benign-moas / likely-misconfig).
	Class rpki.Class
}

// Monitor checks MOAS-list consistency across vantage-point feeds. It
// is safe for concurrent use (feeds may be ingested in parallel).
type Monitor struct {
	mu sync.Mutex
	// lists holds the first-established MOAS list per prefix across all
	// vantages; conflicts are diagnosed against it.
	checker *core.Checker
	alarms  []Alarm
	// current tracks, per prefix, the set of origins currently visible
	// (for MOAS-case reporting independent of list checking).
	origins map[astypes.Prefix]map[astypes.ASN]struct{}
	// resolver, if set, classifies alarms into valid/invalid.
	resolver Resolver
	// rpki, if set, is the validated ROA store alarms are cross-checked
	// against; nil validates to NotFound (no ROV signal).
	rpki *rpki.Store
	// met, if set, mirrors monitor state onto a telemetry registry.
	met *monitorMetrics
	// rec, if set, records validate events and forensic alarm bundles
	// on a flight recorder (WithTrace).
	rec *trace.Recorder
	// obs, if set, records per-stage detection latency for stamped
	// ingest paths (WithObs): the validate crossing per checked entry
	// and the cumulative ingest → alarm latency per conflict.
	obs *obs.Recorder
	// seq mints one span per ingested entry, so an alarm bundle points
	// back at the exact snapshot entry that triggered it even when
	// feeds are ingested in parallel. Atomic: minted before mu is taken.
	seq atomic.Uint64
}

// monitorMetrics is the monitor's instrumentation (WithTelemetry).
type monitorMetrics struct {
	entries *telemetry.Counter
	// alarms is labeled by prefix: operators watch which prefixes are
	// in conflict, not just how many alarms fired. The label space is
	// bounded by the number of conflicting prefixes, which the paper
	// measures in the tens per day, not the table size.
	alarms *telemetry.CounterVec
	// cases tracks prefixes currently visible with more than one origin.
	cases *telemetry.Gauge
	// classes counts alarms by ROV-crossed class, the paper evaluation's
	// benign/misconfig/hijack breakdown.
	classes *telemetry.CounterVec
}

func newMonitorMetrics(r *telemetry.Registry) *monitorMetrics {
	return &monitorMetrics{
		entries: r.Counter("monitor_entries_total",
			"Routing-table entries ingested across all vantages."),
		alarms: r.CounterVec("monitor_alarms_total",
			"MOAS-list alarms raised, by conflicting prefix.", "prefix"),
		cases: r.Gauge("monitor_moas_cases",
			"Prefixes currently visible with more than one origin AS."),
		classes: r.CounterVec("monitor_alarm_class_total",
			"MOAS alarms by RPKI/ROV cross-validated class.", "class"),
	}
}

// Resolver mirrors speaker.Resolver for alarm classification.
type Resolver interface {
	ValidOrigins(prefix astypes.Prefix) (core.List, bool)
}

// Option configures a Monitor.
type Option interface {
	apply(*Monitor)
}

type resolverOption struct{ r Resolver }

func (o resolverOption) apply(m *Monitor) { m.resolver = o.r }

// WithResolver classifies alarms against a MOASRR database.
func WithResolver(r Resolver) Option {
	return resolverOption{r: r}
}

type rpkiOption struct{ s *rpki.Store }

func (o rpkiOption) apply(m *Monitor) { m.rpki = o.s }

// WithRPKI cross-checks every alarm against a validated ROA store:
// each Alarm (and its forensic bundle) carries the rpki.Classify class
// for the conflicting (prefix, origin).
func WithRPKI(s *rpki.Store) Option {
	return rpkiOption{s: s}
}

type telemetryOption struct{ r *telemetry.Registry }

func (o telemetryOption) apply(m *Monitor) { m.met = newMonitorMetrics(o.r) }

// WithTelemetry mirrors entry counts, per-prefix alarm counts, and the
// live MOAS-case count onto r.
func WithTelemetry(r *telemetry.Registry) Option {
	return telemetryOption{r: r}
}

type traceOption struct{ rec *trace.Recorder }

func (o traceOption) apply(m *Monitor) { m.rec = o.rec }

// WithTrace records a validate event per ingested entry and a forensic
// bundle per alarm (the vantage name lands in the bundle's Note) on
// rec.
func WithTrace(rec *trace.Recorder) Option {
	return traceOption{rec: rec}
}

type obsOption struct{ rec *obs.Recorder }

func (o obsOption) apply(m *Monitor) { m.obs = o.rec }

// WithObs records per-stage detection latency on rec for every entry
// ingested through the *Stamp observation paths.
func WithObs(rec *obs.Recorder) Option {
	return obsOption{rec: rec}
}

// New returns an empty monitor.
func New(opts ...Option) *Monitor {
	m := &Monitor{
		checker: core.NewChecker(),
		origins: make(map[astypes.Prefix]map[astypes.ASN]struct{}),
	}
	for _, o := range opts {
		o.apply(m)
	}
	return m
}

// ObserveEntry ingests one routing-table entry from the named vantage.
func (m *Monitor) ObserveEntry(vantage string, prefix astypes.Prefix, path astypes.ASPath, comms []astypes.Community) {
	// The monitor has no wire decoder to mint spans, so each ingested
	// entry gets its own ordinal: bundle forensics can then say "the
	// Nth entry of this run" rather than nothing.
	m.ObserveEntrySpan(vantage, prefix, path, comms, m.seq.Add(1))
}

// ObserveEntrySpan is ObserveEntry with a caller-supplied span: replay
// paths pass the source record's ordinal so an alarm bundle points back
// at the exact archived record that raised it.
func (m *Monitor) ObserveEntrySpan(vantage string, prefix astypes.Prefix, path astypes.ASPath, comms []astypes.Community, span uint64) {
	m.observe(vantage, prefix, path, comms, span, nil)
}

// ObserveEntryStamp is ObserveEntrySpan carrying the full stage stamp:
// the MOAS check lands a validate-stage crossing and a detected
// conflict records the cumulative ingest → alarm latency.
func (m *Monitor) ObserveEntryStamp(vantage string, prefix astypes.Prefix, path astypes.ASPath, comms []astypes.Community, st *obs.Stamp) {
	m.observe(vantage, prefix, path, comms, st.Span, st)
}

func (m *Monitor) observe(vantage string, prefix astypes.Prefix, path astypes.ASPath, comms []astypes.Community, span uint64, st *obs.Stamp) {
	verdict, conflict := m.checker.Check(core.Announcement{
		Prefix:      prefix,
		Path:        path,
		Communities: comms,
		Span:        span,
	})
	m.obs.Cross(st, obs.StageValidate)
	var class rpki.Class
	if verdict != core.VerdictConsistent && conflict != nil {
		class = rpki.Classify(m.rpki.Validate(prefix, conflict.Origin), verdict)
		// Detection latency: ingest instant → alarm raise, cumulative.
		m.obs.End(st, obs.StageAlarm)
	}
	if m.rec.Enabled() {
		origin, _ := path.Origin()
		m.rec.Record(trace.Event{
			Kind:   trace.KindValidate,
			Detail: verdictDetail(verdict),
			Origin: origin,
			Prefix: prefix,
		})
		if verdict != core.VerdictConsistent && conflict != nil {
			m.rec.RecordAlarm(prefix, trace.AlarmBundle{
				Span:     conflict.Span,
				Origin:   uint32(conflict.Origin),
				Verdict:  verdict.String(),
				Class:    class.String(),
				Note:     vantage,
				Existing: trace.ASNs(conflict.Existing.Origins()),
				Received: trace.ASNs(conflict.Received.Origins()),
				Path:     trace.PathASNs(conflict.Path),
			})
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.met != nil {
		m.met.entries.Inc()
	}
	if origin, ok := path.Origin(); ok {
		set, ok := m.origins[prefix]
		if !ok {
			set = make(map[astypes.ASN]struct{}, 2)
			m.origins[prefix] = set
		}
		before := len(set)
		set[origin] = struct{}{}
		// A prefix becomes a MOAS case when its visible origin set
		// crosses from one to two.
		if m.met != nil && before == 1 && len(set) == 2 {
			m.met.cases.Inc()
		}
	}
	if verdict != core.VerdictConsistent && conflict != nil {
		m.alarms = append(m.alarms, Alarm{Conflict: *conflict, Vantage: vantage, Class: class})
		if m.met != nil {
			m.met.alarms.With(prefix.String()).Inc()
			m.met.classes.With(class.String()).Inc()
		}
	}
}

// verdictDetail maps a checker verdict to its trace detail.
func verdictDetail(v core.Verdict) trace.Detail {
	switch v {
	case core.VerdictConflict:
		return trace.DetailConflict
	case core.VerdictOriginNotListed:
		return trace.DetailOriginNotListed
	default:
		return trace.DetailConsistent
	}
}

// ObserveDump ingests one table snapshot (e.g. a parsed RouteViews
// dump) from the named vantage.
func (m *Monitor) ObserveDump(vantage string, d *routegen.Dump) {
	for _, e := range d.Entries {
		m.ObserveEntry(vantage, e.Prefix, e.Path, e.Communities)
	}
}

// ObserveUpdate ingests one BGP UPDATE captured from a live feed.
func (m *Monitor) ObserveUpdate(vantage string, u *wire.Update) {
	for _, prefix := range u.NLRI {
		m.ObserveEntry(vantage, prefix, u.Attrs.ASPath, u.Attrs.Communities)
	}
	m.forgetWithdrawn(u)
}

// ObserveUpdateSpan is ObserveUpdate with a caller-supplied span shared
// by every NLRI prefix of the update: one replayed record, one span.
func (m *Monitor) ObserveUpdateSpan(vantage string, u *wire.Update, span uint64) {
	for _, prefix := range u.NLRI {
		m.ObserveEntrySpan(vantage, prefix, u.Attrs.ASPath, u.Attrs.Communities, span)
	}
	m.forgetWithdrawn(u)
}

// ObserveUpdateStamp is ObserveUpdateSpan carrying the full stage stamp
// (see ObserveEntryStamp).
func (m *Monitor) ObserveUpdateStamp(vantage string, u *wire.Update, st *obs.Stamp) {
	for _, prefix := range u.NLRI {
		m.ObserveEntryStamp(vantage, prefix, u.Attrs.ASPath, u.Attrs.Communities, st)
	}
	m.forgetWithdrawn(u)
}

// forgetWithdrawn drops the withdrawn prefixes of u from the MOAS view.
func (m *Monitor) forgetWithdrawn(u *wire.Update) {
	if len(u.Withdrawn) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range u.Withdrawn {
		if m.met != nil && len(m.origins[w]) >= 2 {
			m.met.cases.Dec()
		}
		delete(m.origins, w)
		m.checker.Forget(w)
	}
}

// ReadDumpStream parses a dump from r (text or binary archive format,
// sniffed automatically) and ingests it.
func (m *Monitor) ReadDumpStream(vantage string, r io.Reader) error {
	d, err := routegen.ReadDumpAuto(r)
	if err != nil {
		return fmt.Errorf("monitor: read dump from %s: %w", vantage, err)
	}
	m.ObserveDump(vantage, d)
	return nil
}

// Alarms returns all alarms in detection order.
func (m *Monitor) Alarms() []Alarm {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alarm, len(m.alarms))
	copy(out, m.alarms)
	return out
}

// MOASCase is one prefix with its currently visible origin set.
type MOASCase struct {
	Prefix  astypes.Prefix
	Origins []astypes.ASN
	// Invalid is set when a resolver is configured and some visible
	// origin is outside the registered valid set; Known reports whether
	// the resolver had a record at all.
	Invalid bool
	Known   bool
}

// MOASCases returns every prefix currently visible with more than one
// origin, classified against the resolver when available, sorted by
// prefix.
func (m *Monitor) MOASCases() []MOASCase {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []MOASCase
	for prefix, set := range m.origins {
		if len(set) < 2 {
			continue
		}
		c := MOASCase{Prefix: prefix}
		for a := range set {
			c.Origins = append(c.Origins, a)
		}
		astypes.SortASNs(c.Origins)
		if m.resolver != nil {
			if valid, ok := m.resolver.ValidOrigins(prefix); ok {
				c.Known = true
				for _, o := range c.Origins {
					if !valid.Contains(o) {
						c.Invalid = true
						break
					}
				}
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// Reset clears all monitor state (e.g. between daily snapshots, so each
// day is judged independently).
func (m *Monitor) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.checker.Reset()
	m.origins = make(map[astypes.Prefix]map[astypes.ASN]struct{})
	m.alarms = nil
	if m.met != nil {
		// Counters are cumulative across resets by design; only the
		// live-case gauge goes back to zero.
		m.met.cases.Set(0)
	}
}

// AlarmGroup aggregates the alarms of one prefix: operators care about
// "which prefixes are in conflict and with whom", not a raw event list.
type AlarmGroup struct {
	Prefix astypes.Prefix
	Count  int
	// Origins are the distinct conflicting origin ASes observed.
	Origins []astypes.ASN
	// Vantages are the distinct feeds that contributed alarms.
	Vantages []string
}

// AlarmSummary groups all alarms by prefix, sorted by descending count
// (then by prefix for determinism).
func (m *Monitor) AlarmSummary() []AlarmGroup {
	m.mu.Lock()
	defer m.mu.Unlock()
	type agg struct {
		count    int
		origins  map[astypes.ASN]struct{}
		vantages map[string]struct{}
	}
	byPrefix := make(map[astypes.Prefix]*agg)
	for _, a := range m.alarms {
		g := byPrefix[a.Conflict.Prefix]
		if g == nil {
			g = &agg{
				origins:  make(map[astypes.ASN]struct{}),
				vantages: make(map[string]struct{}),
			}
			byPrefix[a.Conflict.Prefix] = g
		}
		g.count++
		g.origins[a.Conflict.Origin] = struct{}{}
		g.vantages[a.Vantage] = struct{}{}
	}
	out := make([]AlarmGroup, 0, len(byPrefix))
	for prefix, g := range byPrefix {
		group := AlarmGroup{Prefix: prefix, Count: g.count}
		for o := range g.origins {
			group.Origins = append(group.Origins, o)
		}
		astypes.SortASNs(group.Origins)
		for v := range g.vantages {
			group.Vantages = append(group.Vantages, v)
		}
		sort.Strings(group.Vantages)
		out = append(out, group)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Prefix.Compare(out[j].Prefix) < 0
	})
	return out
}
