package monitor

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/dnsval"
	"repro/internal/routegen"
	"repro/internal/trace"
	"repro/internal/wire"
)

var prefix = astypes.MustPrefix(0x83b30000, 16)

func TestMonitorDetectsCrossVantageConflict(t *testing.T) {
	m := New()
	// Vantage A sees the valid route; vantage B sees the hijack.
	m.ObserveEntry("rv-a", prefix, astypes.NewSeqPath(701, 4), nil)
	m.ObserveEntry("rv-b", prefix, astypes.NewSeqPath(1239, 52), nil)
	alarms := m.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d", len(alarms))
	}
	if alarms[0].Vantage != "rv-b" {
		t.Errorf("vantage = %q", alarms[0].Vantage)
	}
	if alarms[0].Conflict.Origin != 52 {
		t.Errorf("conflicting origin = %v", alarms[0].Conflict.Origin)
	}
	cases := m.MOASCases()
	if len(cases) != 1 || len(cases[0].Origins) != 2 {
		t.Errorf("cases = %+v", cases)
	}
}

func TestMonitorValidMOASNoAlarm(t *testing.T) {
	m := New()
	list := core.NewList(4, 226)
	m.ObserveEntry("rv-a", prefix, astypes.NewSeqPath(701, 4), list.Communities())
	m.ObserveEntry("rv-b", prefix, astypes.NewSeqPath(1239, 226), list.Communities())
	if got := len(m.Alarms()); got != 0 {
		t.Errorf("valid MOAS raised %d alarms", got)
	}
	cases := m.MOASCases()
	if len(cases) != 1 {
		t.Fatalf("cases = %+v", cases)
	}
	if cases[0].Known || cases[0].Invalid {
		t.Error("without a resolver cases must be unclassified")
	}
}

func TestMonitorResolverClassification(t *testing.T) {
	store := dnsval.NewStore()
	store.Register(prefix, core.NewList(4, 226))
	m := New(WithResolver(store))
	list := core.NewList(4, 226)
	m.ObserveEntry("a", prefix, astypes.NewSeqPath(701, 4), list.Communities())
	m.ObserveEntry("a", prefix, astypes.NewSeqPath(701, 226), list.Communities())
	other := astypes.MustPrefix(0x0a000000, 8)
	m.ObserveEntry("a", other, astypes.NewSeqPath(701, 7), nil)
	m.ObserveEntry("a", other, astypes.NewSeqPath(702, 8), nil)

	cases := m.MOASCases()
	if len(cases) != 2 {
		t.Fatalf("cases = %+v", cases)
	}
	// Sorted by prefix: 10/8 first (unknown to the DB), then 131.179/16.
	if cases[0].Known {
		t.Error("unregistered prefix should be unknown")
	}
	if !cases[1].Known || cases[1].Invalid {
		t.Errorf("registered valid MOAS misclassified: %+v", cases[1])
	}
}

func TestMonitorResolverFlagsInvalid(t *testing.T) {
	store := dnsval.NewStore()
	store.Register(prefix, core.NewList(4))
	m := New(WithResolver(store))
	m.ObserveEntry("a", prefix, astypes.NewSeqPath(701, 4), nil)
	m.ObserveEntry("a", prefix, astypes.NewSeqPath(701, 52), nil)
	cases := m.MOASCases()
	if len(cases) != 1 || !cases[0].Invalid {
		t.Errorf("invalid MOAS not flagged: %+v", cases)
	}
}

func TestMonitorObserveUpdateAndWithdraw(t *testing.T) {
	m := New()
	u := &wire.Update{
		Attrs: wire.PathAttrs{
			HasOrigin:  true,
			HasNextHop: true,
			ASPath:     astypes.NewSeqPath(701, 4),
		},
		NLRI: []astypes.Prefix{prefix},
	}
	m.ObserveUpdate("feed", u)
	m.ObserveUpdate("feed", &wire.Update{
		Attrs: wire.PathAttrs{HasOrigin: true, HasNextHop: true, ASPath: astypes.NewSeqPath(9, 52)},
		NLRI:  []astypes.Prefix{prefix},
	})
	if len(m.Alarms()) != 1 {
		t.Fatalf("alarms = %d", len(m.Alarms()))
	}
	// Withdrawal clears both the origin view and the checker state.
	m.ObserveUpdate("feed", &wire.Update{Withdrawn: []astypes.Prefix{prefix}})
	if got := m.MOASCases(); len(got) != 0 {
		t.Errorf("cases after withdrawal = %+v", got)
	}
	// Re-announcement by a single origin raises no further alarm.
	m.ObserveUpdate("feed", u)
	if len(m.Alarms()) != 1 {
		t.Errorf("withdrawal did not reset checker state: %d alarms", len(m.Alarms()))
	}
}

func TestMonitorObserveDumpAndReset(t *testing.T) {
	d := &routegen.Dump{
		Day: 1,
		Entries: []routegen.Entry{
			{Prefix: prefix, Path: astypes.NewSeqPath(701, 4)},
			{Prefix: prefix, Path: astypes.NewSeqPath(1239, 52)},
		},
	}
	m := New()
	m.ObserveDump("rv", d)
	if len(m.Alarms()) != 1 || len(m.MOASCases()) != 1 {
		t.Fatalf("dump ingestion: alarms=%d cases=%d", len(m.Alarms()), len(m.MOASCases()))
	}
	m.Reset()
	if len(m.Alarms()) != 0 || len(m.MOASCases()) != 0 {
		t.Error("Reset left state behind")
	}
}

func TestReadDumpStream(t *testing.T) {
	text := "# dump day=3 date=1998-01-01 entries=2\n" +
		"131.179.0.0/16|701 4\n" +
		"131.179.0.0/16|1239 52\n"
	m := New()
	if err := m.ReadDumpStream("rv", strings.NewReader(text)); err != nil {
		t.Fatal(err)
	}
	if len(m.Alarms()) != 1 {
		t.Errorf("alarms = %d", len(m.Alarms()))
	}
	if err := m.ReadDumpStream("rv", strings.NewReader("garbage")); err == nil {
		t.Error("bad stream accepted")
	}
}

func TestAlarmSummaryGroupsByPrefix(t *testing.T) {
	other := astypes.MustPrefix(0x0a000000, 8)
	m := New()
	m.ObserveEntry("rv-a", prefix, astypes.NewSeqPath(701, 4), nil)
	m.ObserveEntry("rv-b", prefix, astypes.NewSeqPath(1239, 52), nil)
	m.ObserveEntry("rv-b", prefix, astypes.NewSeqPath(1239, 53), nil)
	m.ObserveEntry("rv-a", other, astypes.NewSeqPath(701, 7), nil)
	m.ObserveEntry("rv-c", other, astypes.NewSeqPath(701, 8), nil)

	groups := m.AlarmSummary()
	if len(groups) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	top := groups[0]
	if top.Prefix != prefix || top.Count != 2 {
		t.Errorf("top group = %+v", top)
	}
	if len(top.Origins) != 2 || top.Origins[0] != 52 || top.Origins[1] != 53 {
		t.Errorf("top origins = %v", top.Origins)
	}
	if len(top.Vantages) != 1 || top.Vantages[0] != "rv-b" {
		t.Errorf("top vantages = %v", top.Vantages)
	}
	if groups[1].Count != 1 {
		t.Errorf("second group = %+v", groups[1])
	}
	if got := New().AlarmSummary(); len(got) != 0 {
		t.Errorf("empty monitor summary = %v", got)
	}
}

func TestMonitorWithTrace(t *testing.T) {
	rec := trace.NewRecorder(64)
	m := New(WithTrace(rec))
	m.ObserveEntry("rv-a", prefix, astypes.NewSeqPath(701, 4), nil)
	m.ObserveEntry("rv-b", prefix, astypes.NewSeqPath(1239, 52), nil)

	var details []trace.Detail
	for _, e := range rec.Events() {
		if e.Kind == trace.KindValidate && e.Prefix == prefix {
			details = append(details, e.Detail)
		}
	}
	want := []trace.Detail{trace.DetailConsistent, trace.DetailConflict}
	if !reflect.DeepEqual(details, want) {
		t.Errorf("validate details = %v, want %v", details, want)
	}

	if rec.AlarmCount() != 1 {
		t.Fatalf("alarm bundles = %d", rec.AlarmCount())
	}
	b, _ := rec.Alarm(0)
	if b.Note != "rv-b" {
		t.Errorf("bundle note = %q, want the vantage name", b.Note)
	}
	if b.Prefix != prefix.String() || b.Origin != 52 {
		t.Errorf("bundle identity: %+v", b)
	}
	if !reflect.DeepEqual(b.Origins, []uint32{4, 52}) {
		t.Errorf("competing origins = %v", b.Origins)
	}
	if !reflect.DeepEqual(b.Path, []uint32{1239, 52}) {
		t.Errorf("offending path = %v", b.Path)
	}
}
