// Package e2etest exercises the whole detection pipeline end to end on
// loopback TCP: a validating speaker daemon peered with a route
// collector, a legitimate origin, and a forged-origin attacker — then
// verifies the observable outcomes (alarm raised, false route dropped,
// collector view clean) against the /metrics exposition, so the
// telemetry layer is tested as the *interface* through which the
// system's behavior is judged, exactly how an operator would judge it.
package e2etest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/speaker"
)

// Harness is one booted loopback deployment: a collector and a
// validating daemon peered with it.
type Harness struct {
	// Collector is the passive Route-Views-style archive the validator
	// exports its (validated) table to.
	Collector *collector.Collector
	// Validator is the MOAS-validating daemon under test.
	Validator *daemon.Daemon

	// ValidatorAddr accepts BGP peerings (origin and attacker dial it).
	ValidatorAddr string
	// MetricsAddr is the validator's admin endpoint.
	MetricsAddr string

	speakers []*speaker.Speaker
}

// Boot starts a collector on loopback, then a validating daemon (drop
// mode) peered with it, holding a MOASRR record entitling only
// legitOrigin to prefix. Any roaOrigins additionally load a ROA for
// prefix authorizing exactly those origins, turning on RPKI/ROV
// cross-validation of alarms. Cleanup is registered on t.
func Boot(t *testing.T, prefix string, legitOrigin uint32, roaOrigins ...uint32) *Harness {
	t.Helper()

	c := collector.New(collector.Config{RouterID: 6447})
	t.Cleanup(func() { c.Close() })
	cln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c.Listen(cln)

	cfg := daemon.Config{
		AS:          100,
		RouterID:    100,
		Validation:  "drop",
		Listen:      []string{"127.0.0.1:0"},
		MetricsAddr: "127.0.0.1:0",
		TraceEvents: 256,
		Pprof:       true,
		Peers: []daemon.PeerConfig{
			{Addr: cln.Addr().String(), AS: uint32(collector.CollectorASN)},
		},
		MOASRR: []daemon.MOASRRConfig{
			{Prefix: prefix, Origins: []uint32{legitOrigin}},
		},
	}
	if len(roaOrigins) > 0 {
		cfg.ROAs = []daemon.ROAConfig{{Prefix: prefix, Origins: roaOrigins}}
	}
	d, err := daemon.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	addrs := d.ListenAddrs()
	if len(addrs) != 1 {
		t.Fatalf("validator listen addrs = %v, want one", addrs)
	}
	return &Harness{
		Collector:     c,
		Validator:     d,
		ValidatorAddr: addrs[0],
		MetricsAddr:   d.MetricsAddr(),
	}
}

// StartSpeaker boots a plain speaker with the given AS, originating
// prefix with the given MOAS list (empty = implicit), and dials it into
// the validator. Cleanup is registered on t.
func (h *Harness) StartSpeaker(t *testing.T, as uint32, prefix astypes.Prefix, list core.List) *speaker.Speaker {
	t.Helper()
	s, err := speaker.New(speaker.Config{AS: astypes.ASN(as), RouterID: uint32(as)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	h.speakers = append(h.speakers, s)
	s.Originate(prefix, list)
	if err := s.Connect(h.ValidatorAddr, 100); err != nil {
		t.Fatal(err)
	}
	return s
}

// Metrics is one scrape of a Prometheus text exposition: series key
// (name plus its rendered label set, exactly as exposed) to value.
type Metrics map[string]float64

// Counter returns the value of the named series (0 when absent, as
// Prometheus semantics treat a never-incremented counter).
func (m Metrics) Counter(series string) float64 { return m[series] }

// ParsePrometheus parses the text exposition format produced by
// telemetry.WritePrometheus: comment lines are skipped, every sample
// line is `key value` with the value after the last space.
func ParsePrometheus(text string) (Metrics, error) {
	out := make(Metrics)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("e2etest: unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("e2etest: sample %q: %w", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}

// Scrape fetches and parses the validator's /metrics text exposition.
func (h *Harness) Scrape(t *testing.T) Metrics {
	t.Helper()
	body := h.get(t, "/metrics", "")
	m, err := ParsePrometheus(body)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ScrapeJSON fetches the JSON exposition and flattens it into the same
// series-key space as the text format, so the two encoders can be
// cross-checked sample by sample.
func (h *Harness) ScrapeJSON(t *testing.T) Metrics {
	t.Helper()
	body := h.get(t, "/metrics?format=json", "")
	var doc struct {
		Namespace string `json:"namespace"`
		Metrics   []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels map[string]string `json:"labels"`
				Value  *float64          `json:"value"`
				Count  *uint64           `json:"count"`
				Sum    *float64          `json:"sum"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("decode JSON exposition: %v", err)
	}
	out := make(Metrics)
	for _, f := range doc.Metrics {
		for _, s := range f.Series {
			key := f.Name
			if len(s.Labels) > 0 {
				// Label order in the JSON doc mirrors registration
				// order, but for the counters this harness asserts on
				// there is at most one label, so sorting is not needed
				// to match the text rendering.
				var parts []string
				for k, v := range s.Labels {
					parts = append(parts, fmt.Sprintf("%s=%q", k, v))
				}
				key += "{" + strings.Join(parts, ",") + "}"
			}
			switch {
			case s.Value != nil:
				out[key] = *s.Value
			case s.Count != nil:
				out[key+"_count"] = float64(*s.Count)
				if s.Sum != nil {
					out[key+"_sum"] = *s.Sum
				}
			}
		}
	}
	return out
}

// get fetches path from the admin endpoint, asserting status 200 (or
// wantStatus when nonzero is encoded in callers directly).
func (h *Harness) get(t *testing.T, path, accept string) string {
	t.Helper()
	req, err := http.NewRequest("GET", "http://"+h.MetricsAddr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return string(body)
}

// WaitFor polls cond until it holds or the deadline passes.
func WaitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
