package e2etest

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/speaker"
	"repro/internal/trace"
)

// TestForgedOriginObservability runs the paper's attack scenario end to
// end and judges every outcome through the admin endpoint, the way an
// operator would: a legitimate origin announces its prefix with a MOAS
// list, a forged origin announces the same prefix, and the validating
// daemon must raise exactly one alarm, drop the false route, keep the
// collector's view clean — and say all of that on /metrics.
func TestForgedOriginObservability(t *testing.T) {
	const (
		prefixStr   = "131.179.0.0/16"
		legitAS     = 65001
		forgedAS    = 64999
		validatorAS = 100
	)
	prefix := astypes.MustPrefix(0x83b30000, 16)

	h := Boot(t, prefixStr, legitAS)

	// Baseline after boot: the only peering is validator→collector.
	base := h.Scrape(t)
	if got := base.Counter("moas_daemon_peer_up_total"); got != 1 {
		t.Errorf("baseline daemon_peer_up_total = %v, want 1 (the collector peering)", got)
	}
	if got := base.Counter("moas_speaker_moas_alarms_total"); got != 0 {
		t.Errorf("baseline alarms = %v, want 0", got)
	}

	// Phase 1: the legitimate origin announces prefix with list {65001}.
	h.StartSpeaker(t, legitAS, prefix, core.NewList(astypes.ASN(legitAS)))
	WaitFor(t, func() bool {
		r := h.Validator.Speaker.Table().Best(prefix)
		return r != nil && r.OriginAS() == legitAS
	}, "legit route at validator")
	WaitFor(t, func() bool {
		_, ok := h.Collector.RoutesFrom(validatorAS)[prefix]
		return ok
	}, "legit route at collector")

	mid := h.Scrape(t)
	if got := mid.Counter("moas_speaker_routes_accepted_total") - base.Counter("moas_speaker_routes_accepted_total"); got != 1 {
		t.Errorf("legit announcement: routes_accepted delta = %v, want exactly 1", got)
	}
	if got := mid.Counter("moas_speaker_updates_in_total") - base.Counter("moas_speaker_updates_in_total"); got != 1 {
		t.Errorf("legit announcement: updates_in delta = %v, want exactly 1", got)
	}
	if got := mid.Counter("moas_speaker_moas_alarms_total"); got != 0 {
		t.Errorf("legit announcement raised alarms = %v, want 0", got)
	}

	// Phase 2: the forged origin announces the same prefix (implicit
	// list {64999}), conflicting with both the carried list and the
	// validator's MOASRR record.
	h.StartSpeaker(t, forgedAS, prefix, core.NewList())
	WaitFor(t, func() bool {
		return len(h.Validator.Speaker.Alarms()) >= 1
	}, "alarm at validator")

	final := h.Scrape(t)

	// The attack is one forged announcement: exactly one alarm, exactly
	// one rejected route, nothing further accepted.
	if got := final.Counter("moas_speaker_moas_alarms_total") - mid.Counter("moas_speaker_moas_alarms_total"); got != 1 {
		t.Errorf("forged announcement: moas_alarms delta = %v, want exactly 1", got)
	}
	if got := final.Counter("moas_speaker_routes_rejected_total") - mid.Counter("moas_speaker_routes_rejected_total"); got != 1 {
		t.Errorf("forged announcement: routes_rejected delta = %v, want exactly 1", got)
	}
	if got := final.Counter("moas_speaker_routes_accepted_total") - mid.Counter("moas_speaker_routes_accepted_total"); got != 0 {
		t.Errorf("forged announcement: routes_accepted delta = %v, want 0", got)
	}

	// The false route never made it into the forwarding view...
	if r := h.Validator.Speaker.Table().Best(prefix); r == nil || r.OriginAS() != legitAS {
		t.Errorf("validator best route = %+v, want origin %d", r, legitAS)
	}
	// ...nor downstream: the collector still sees only the true origin.
	routes := h.Collector.RoutesFrom(validatorAS)
	path, ok := routes[prefix]
	if !ok {
		t.Fatal("collector lost the legit route")
	}
	if origin, _ := path.Origin(); origin != legitAS {
		t.Errorf("collector sees origin %v, want %d", origin, legitAS)
	}

	// Both exposition formats agree sample for sample on the counters
	// this test judged the system by.
	js := h.ScrapeJSON(t)
	for _, series := range []string{
		"moas_speaker_moas_alarms_total",
		"moas_speaker_routes_rejected_total",
		"moas_speaker_routes_accepted_total",
		"moas_speaker_updates_in_total",
		"moas_daemon_peer_up_total",
	} {
		if js.Counter(series) != final.Counter(series) {
			t.Errorf("JSON %s = %v, text = %v", series, js.Counter(series), final.Counter(series))
		}
	}

	// Session-level instrumentation saw the handshakes: three peers
	// (collector, legit, forged) each completed an OPEN exchange.
	if got := final.Counter(`moas_session_msgs_out_total{type="open"}`); got != 3 {
		t.Errorf(`session_msgs_out_total{type="open"} = %v, want 3`, got)
	}

	// The liveness and MIB debug endpoints serve alongside /metrics.
	if body := h.get(t, "/healthz", ""); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz body = %q", body)
	}
	var mib speaker.MIB
	if err := json.Unmarshal([]byte(h.get(t, "/debug/mib", "")), &mib); err != nil {
		t.Fatalf("decode /debug/mib: %v", err)
	}
	if mib.AS != validatorAS || len(mib.Alarms) != 1 {
		t.Errorf("/debug/mib AS = %v alarms = %d, want AS %d with 1 alarm", mib.AS, len(mib.Alarms), validatorAS)
	}
	if mib.Counters.Alarms != uint64(final.Counter("moas_speaker_moas_alarms_total")) {
		t.Errorf("MIB counters (%d alarms) disagree with /metrics (%v)",
			mib.Counters.Alarms, final.Counter("moas_speaker_moas_alarms_total"))
	}

	// The flight recorder captured exactly one forensic bundle for the
	// attack, and /debug/alarms names the forged AS, both MOAS lists,
	// and the offending path.
	var bundles []trace.AlarmBundle
	if err := json.Unmarshal([]byte(h.get(t, "/debug/alarms", "")), &bundles); err != nil {
		t.Fatalf("decode /debug/alarms: %v", err)
	}
	if len(bundles) != 1 {
		t.Fatalf("/debug/alarms bundles = %d, want exactly 1", len(bundles))
	}
	b := bundles[0]
	if b.Prefix != prefixStr || b.Verdict != "conflict" {
		t.Errorf("bundle identity: %+v", b)
	}
	if b.Node != validatorAS || b.FromPeer != forgedAS || b.Origin != forgedAS {
		t.Errorf("bundle endpoints: node=%d fromPeer=%d origin=%d", b.Node, b.FromPeer, b.Origin)
	}
	if want := []uint32{forgedAS, legitAS}; !reflect.DeepEqual(b.Origins, want) {
		t.Errorf("conflicting-origin set = %v, want %v", b.Origins, want)
	}
	if !reflect.DeepEqual(b.Existing, []uint32{legitAS}) || !reflect.DeepEqual(b.Received, []uint32{forgedAS}) {
		t.Errorf("MOAS lists: existing=%v received=%v", b.Existing, b.Received)
	}
	pathHasForged := false
	for _, asn := range b.Path {
		if asn == forgedAS {
			pathHasForged = true
		}
	}
	if !pathHasForged {
		t.Errorf("offending path %v does not name the forged AS", b.Path)
	}
	if b.Span == 0 {
		t.Error("bundle missing the triggering message's span")
	}
	// No ROA source was configured, so ROV answers NotFound and the
	// conflict classifies by MOAS provenance alone.
	if b.Class != "benign-moas" {
		t.Errorf("bundle class = %q, want benign-moas without RPKI data", b.Class)
	}

	// The same bundle is addressable by ID, and the live timeline names
	// the attack's causal chain.
	var byID trace.AlarmBundle
	if err := json.Unmarshal([]byte(h.get(t, "/debug/alarms/0", "")), &byID); err != nil {
		t.Fatalf("decode /debug/alarms/0: %v", err)
	}
	if byID.ID != 0 || byID.Origin != forgedAS {
		t.Errorf("/debug/alarms/0: %+v", byID)
	}
	timeline := h.get(t, "/debug/trace", "")
	for _, want := range []string{prefixStr, "alarm", "validate", "conflict"} {
		if !strings.Contains(timeline, want) {
			t.Errorf("/debug/trace missing %q", want)
		}
	}

	// pprof serves on the same admin port, and build_info identifies
	// the binary in the scrape the operator already has open.
	if body := h.get(t, "/debug/pprof/cmdline", ""); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	foundBuildInfo := false
	for series := range final {
		if strings.HasPrefix(series, "moas_build_info{") {
			foundBuildInfo = true
		}
	}
	if !foundBuildInfo {
		t.Error("moas_build_info missing from the scrape")
	}

	// --- Detection-latency observatory ---

	// /debug/status serves the complete stage breakdown: the forged
	// announcement crossed every stage of the pipeline, so all five
	// stage histograms have landings.
	var status obs.StatusDoc
	if err := json.Unmarshal([]byte(h.get(t, "/debug/status?format=json", "")), &status); err != nil {
		t.Fatalf("decode /debug/status: %v", err)
	}
	stages := make(map[string]obs.StageSnapshot, len(status.Stages))
	for _, st := range status.Stages {
		stages[st.Stage] = st
	}
	for _, name := range []string{"decode", "session", "validate", "rib", "alarm"} {
		st, ok := stages[name]
		if !ok {
			t.Errorf("/debug/status stage %q missing from breakdown %v", name, status.Stages)
			continue
		}
		if st.Count == 0 {
			t.Errorf("/debug/status stage %q has no landings", name)
		}
		if st.Count > 0 && st.MaxNs <= 0 {
			t.Errorf("/debug/status stage %q: count %d but max %dns", name, st.Count, st.MaxNs)
		}
	}
	if status.Ready == nil || !*status.Ready {
		t.Errorf("/debug/status ready = %+v, want true", status.Ready)
	}
	if got := status.AlarmClasses["benign-moas"]; got != 1 {
		t.Errorf("/debug/status alarmClasses[benign-moas] = %v, want 1", got)
	}

	// The alarm stage's exemplar is the span of the message that raised
	// the alarm, and resolves through /debug/alarms?span= to the same
	// forensic bundle the bundle checks above examined.
	var exemplar uint64
	for _, bk := range stages["alarm"].Buckets {
		if bk.ExemplarSpan != 0 {
			exemplar = bk.ExemplarSpan
		}
	}
	if exemplar == 0 {
		t.Fatal("alarm stage retains no exemplar span")
	}
	if exemplar != b.Span {
		t.Errorf("alarm exemplar span = %d, bundle span = %d", exemplar, b.Span)
	}
	var bySpan []trace.AlarmBundle
	if err := json.Unmarshal([]byte(h.get(t, fmt.Sprintf("/debug/alarms?span=%d", exemplar), "")), &bySpan); err != nil {
		t.Fatalf("decode /debug/alarms?span=: %v", err)
	}
	if len(bySpan) != 1 || bySpan[0].Span != exemplar || bySpan[0].Origin != forgedAS {
		t.Errorf("/debug/alarms?span=%d = %+v, want the attack bundle", exemplar, bySpan)
	}

	// The text rendering of the same document serves the operator view.
	statusText := h.get(t, "/debug/status", "")
	for _, want := range []string{"stage latency", "alarm classes", "benign-moas"} {
		if !strings.Contains(statusText, want) {
			t.Errorf("/debug/status text missing %q", want)
		}
	}

	// Readiness: no RTR cache, no replay → ready out of the box, on its
	// own endpoint, distinct from liveness.
	if body := h.get(t, "/readyz", ""); strings.TrimSpace(body) != "ok" {
		t.Errorf("/readyz body = %q", body)
	}

	// The runtime sampler serves its ring.
	var samples []obs.RuntimeSample
	if err := json.Unmarshal([]byte(h.get(t, "/debug/runtime", "")), &samples); err != nil {
		t.Fatalf("decode /debug/runtime: %v", err)
	}
	if len(samples) == 0 || samples[len(samples)-1].Goroutines <= 0 {
		t.Errorf("/debug/runtime samples = %+v, want at least one live sample", samples)
	}

	// Every family in the text exposition carries # HELP and # TYPE
	// metadata, and every sample belongs to an announced family.
	expo := h.get(t, "/metrics", "")
	helps, types := map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(expo, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "#" {
			switch fields[1] {
			case "HELP":
				helps[fields[2]] = true
			case "TYPE":
				types[fields[2]] = true
			}
		}
	}
	if len(types) == 0 {
		t.Fatal("exposition carries no # TYPE metadata")
	}
	if !reflect.DeepEqual(helps, types) {
		t.Errorf("HELP families %v != TYPE families %v", helps, types)
	}
	for _, line := range strings.Split(expo, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && types[trimmed] {
				fam = trimmed
			}
		}
		if !types[fam] {
			t.Errorf("sample %q has no # TYPE for its family", name)
		}
	}
}

// TestAcceptHeaderSelectsJSON verifies content negotiation on /metrics:
// an Accept: application/json header selects the JSON encoder without
// the query parameter.
func TestAcceptHeaderSelectsJSON(t *testing.T) {
	h := Boot(t, "10.0.0.0/8", 65001)
	body := h.get(t, "/metrics", "application/json")
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("Accept: application/json did not produce JSON: %v\n%s", err, body)
	}
	if doc["namespace"] != "moas" {
		t.Errorf("namespace = %v, want moas", doc["namespace"])
	}
}
