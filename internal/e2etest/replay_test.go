package e2etest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/monitor"
	"repro/internal/mrt"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestMRTReplayForensics replays a synthetic MRT archive — a table dump
// carrying the legitimate origin plus a forged-origin update — through
// the off-line monitor and asserts the operator-visible outcome: exactly
// one alarm on /debug/alarms whose forensic bundle carries the span of
// the forged archive record, so an operator can seek straight to the
// offending record in the archive.
func TestMRTReplayForensics(t *testing.T) {
	const (
		legitOrigin  = astypes.ASN(65001)
		forgedOrigin = astypes.ASN(64999)
	)
	prefix := astypes.MustPrefix(0x83B30000, 16) // 131.179.0.0/16, the paper's example

	// Build the archive: PEER_INDEX_TABLE, one RIB record from the
	// legitimate origin, then the forged BGP4MP update.
	t0 := time.Unix(1000000000, 0).UTC()
	var archive bytes.Buffer
	w := mrt.NewWriter(&archive)
	peers := []mrt.Peer{{BGPID: 0x01010101, IP: 0xC0000201, AS: uint32(legitOrigin)}}
	if err := w.WritePeerIndex(t0, 0x0A000001, "replay", peers); err != nil {
		t.Fatal(err)
	}
	legit := mrt.RIBEntry{
		PeerAS:  legitOrigin,
		Origin:  wire.OriginIGP,
		Path:    astypes.NewSeqPath(legitOrigin),
		NextHop: 0xC0000201,
	}
	if err := w.WriteRIB(t0, 0, prefix, []mrt.RIBEntry{legit}); err != nil {
		t.Fatal(err)
	}
	forged := &wire.Update{NLRI: []astypes.Prefix{prefix}}
	forged.Attrs.HasOrigin = true
	forged.Attrs.HasNextHop = true
	forged.Attrs.NextHop = 0xC0000202
	forged.Attrs.ASPath = astypes.NewSeqPath(64998, forgedOrigin)
	if err := w.WriteUpdate(t0.Add(time.Second), 64998, 6447, 0xC0000202, 0xC0000201, forged); err != nil {
		t.Fatal(err)
	}
	// The forged update is archive record 3 (peer index, RIB, update).
	const forgedSpan = 3

	// Replay through a monitor wired the way moas-collector wires it:
	// flight recorder + telemetry + admin endpoint.
	reg := telemetry.NewRegistry("moas")
	rec := trace.NewRecorder(256)
	mon := monitor.New(monitor.WithTelemetry(reg), monitor.WithTrace(rec))
	res, err := mon.ReplayMRT("mrt:test-archive", bytes.NewReader(archive.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Records != 3 || res.Stats.RIBPrefixes != 1 || res.Stats.Updates != 1 || res.Malformed != 0 {
		t.Fatalf("replay stats %+v malformed %d", res.Stats, res.Malformed)
	}

	alarms := mon.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("monitor raised %d alarms, want exactly 1: %+v", len(alarms), alarms)
	}

	// Operator view: the forensic bundle over the admin endpoint.
	adminCfg := telemetry.AdminConfig{Registry: reg, Debug: trace.Routes(rec)}
	admin, err := telemetry.ServeAdmin("127.0.0.1:0", adminCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	resp, err := http.Get("http://" + admin.Addr() + "/debug/alarms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/alarms: %d: %s", resp.StatusCode, body)
	}
	var bundles []trace.AlarmBundle
	if err := json.Unmarshal(body, &bundles); err != nil {
		t.Fatalf("decode bundles: %v\n%s", err, body)
	}
	if len(bundles) != 1 {
		t.Fatalf("/debug/alarms has %d bundles, want exactly 1: %s", len(bundles), body)
	}
	b := bundles[0]
	if b.Span != forgedSpan {
		t.Errorf("bundle span %d, want %d (the forged record's archive ordinal)", b.Span, forgedSpan)
	}
	if b.Origin != uint32(forgedOrigin) {
		t.Errorf("bundle origin %d, want %d", b.Origin, forgedOrigin)
	}
	if b.Prefix != prefix.String() {
		t.Errorf("bundle prefix %q, want %q", b.Prefix, prefix)
	}
	if b.Note != "mrt:test-archive" {
		t.Errorf("bundle note %q, want the replay vantage", b.Note)
	}
	if len(b.Existing) != 1 || b.Existing[0] != uint32(legitOrigin) {
		t.Errorf("existing list %v, want [%d]", b.Existing, legitOrigin)
	}
	found := false
	for _, as := range b.Received {
		if as == uint32(forgedOrigin) {
			found = true
		}
	}
	if !found {
		t.Errorf("received list %v does not carry the forged origin %d", b.Received, forgedOrigin)
	}
}
