package e2etest

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
)

// TestForgedOriginWithROAClassification reruns the forged-origin attack
// with the victim prefix covered by a ROA authorizing only the
// legitimate origin. The daemon's ROV cross-validation must then
// upgrade the alarm's class to likely-hijack — visible on the
// per-class counter, in the /debug/alarms bundle, and in the
// moas-report alarm table's class column.
func TestForgedOriginWithROAClassification(t *testing.T) {
	const (
		prefixStr = "131.179.0.0/16"
		legitAS   = 65001
		forgedAS  = 64999
	)
	prefix := astypes.MustPrefix(0x83b30000, 16)

	h := Boot(t, prefixStr, legitAS, legitAS)

	h.StartSpeaker(t, legitAS, prefix, core.NewList(astypes.ASN(legitAS)))
	WaitFor(t, func() bool {
		r := h.Validator.Speaker.Table().Best(prefix)
		return r != nil && r.OriginAS() == legitAS
	}, "legit route at validator")

	// The legitimate origin is ROA-authorized: no alarm, no class count.
	mid := h.Scrape(t)
	if got := mid.Counter("moas_speaker_moas_alarms_total"); got != 0 {
		t.Errorf("legit announcement raised alarms = %v, want 0", got)
	}

	h.StartSpeaker(t, forgedAS, prefix, core.NewList())
	WaitFor(t, func() bool {
		return len(h.Validator.Speaker.Alarms()) >= 1
	}, "alarm at validator")

	final := h.Scrape(t)
	if got := final.Counter("moas_speaker_moas_alarms_total"); got != 1 {
		t.Errorf("moas_alarms_total = %v, want exactly 1", got)
	}
	if got := final.Counter(`moas_speaker_moas_alarm_class_total{class="likely-hijack"}`); got != 1 {
		t.Errorf(`alarm_class_total{class="likely-hijack"} = %v, want exactly 1`, got)
	}
	for _, cls := range []string{"benign-moas", "likely-misconfig"} {
		if got := final.Counter(`moas_speaker_moas_alarm_class_total{class="` + cls + `"}`); got != 0 {
			t.Errorf(`alarm_class_total{class=%q} = %v, want 0`, cls, got)
		}
	}

	// Exactly one forensic bundle, classed likely-hijack on /debug/alarms.
	var bundles []trace.AlarmBundle
	if err := json.Unmarshal([]byte(h.get(t, "/debug/alarms", "")), &bundles); err != nil {
		t.Fatalf("decode /debug/alarms: %v", err)
	}
	if len(bundles) != 1 {
		t.Fatalf("/debug/alarms bundles = %d, want exactly 1", len(bundles))
	}
	b := bundles[0]
	if b.Class != "likely-hijack" {
		t.Errorf("bundle class = %q, want likely-hijack", b.Class)
	}
	if b.Origin != forgedAS || b.Verdict != "conflict" {
		t.Errorf("bundle: origin=%d verdict=%q", b.Origin, b.Verdict)
	}

	// The same bundles render through the moas-report alarm table with
	// the class in its column and in the per-bundle forensics.
	var sb strings.Builder
	if err := report.WriteAlarmTable(&sb, bundles); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "class") || !strings.Contains(out, "likely-hijack") {
		t.Errorf("alarm table missing the class column:\n%s", out)
	}
}
