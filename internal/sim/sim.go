// Package sim provides the deterministic discrete-event simulation
// engine underlying the AS-level BGP model (internal/simbgp). It plays
// the role SSFnet plays in the paper: a virtual clock, an event queue,
// and run-to-quiescence execution.
//
// Determinism: events scheduled for the same virtual time fire in
// scheduling order (a monotonic sequence number breaks ties), so a
// simulation with a fixed topology, fixed seeds, and fixed link delays
// always produces the same outcome.
//
// Events come in two flavors. Closure events (Schedule) are the
// flexible API used for setup and one-off actions; each costs one
// closure allocation. Typed events (ScheduleTyped) are a compact
// kind-plus-payload struct dispatched through the engine's Dispatcher —
// the steady-state form used by simbgp for message delivery and timer
// fires, which allocates nothing once the queue has grown to its
// high-water capacity.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// Event is a deferred action in virtual time.
type Event func()

// Typed is an allocation-free event: a small value struct the engine
// hands to the configured Dispatcher at fire time. Kind selects the
// action; A, B and C carry the payload (the dispatcher defines their
// meaning — simbgp uses node indices and message slots).
type Typed struct {
	Kind    uint32
	A, B, C uint32
}

// Dispatcher executes typed events. Exactly one is attached to an
// Engine (SetDispatcher); scheduling a typed event with no dispatcher
// attached is a programming error and panics at fire time.
type Dispatcher interface {
	Dispatch(Typed)
}

// queuedEvent is one heap entry. fn is nil for typed events; closure
// events leave ev zero.
type queuedEvent struct {
	at  time.Duration
	seq uint64
	ev  Typed
	fn  Event
}

// before is the strict-weak heap order: earlier virtual time first,
// scheduling order (seq) breaking ties — the determinism contract.
func (a *queuedEvent) before(b *queuedEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ErrEventLimit is returned by Run when the configured event budget is
// exhausted before the queue drains — usually a sign of a routing
// oscillation in the model under test.
var ErrEventLimit = errors.New("simulation event limit exceeded")

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; run one Engine per goroutine (the experiment
// harness parallelizes across independent engines).
type Engine struct {
	// queue is a 4-ary min-heap ordered by (at, seq). Hand-rolled index
	// arithmetic (children of i at 4i+1..4i+4) instead of container/heap
	// keeps entries out of interface boxes: heap.Push boxes every
	// queuedEvent into an `any`, one allocation per scheduled event,
	// which at millions of messages per sweep dominated the profile. The
	// shallower 4-ary shape also halves the sift-down depth for the
	// queue sizes BGP convergence produces.
	queue      []queuedEvent
	now        time.Duration
	seq        uint64
	processed  uint64
	eventLimit uint64
	dispatcher Dispatcher
}

// DefaultEventLimit bounds a single Run; BGP on the paper's topologies
// converges in well under this.
const DefaultEventLimit = 50_000_000

// EngineOption configures an Engine.
type EngineOption interface {
	apply(*Engine)
}

type eventLimitOption uint64

func (o eventLimitOption) apply(e *Engine) { e.eventLimit = uint64(o) }

// WithEventLimit overrides the per-run event budget.
func WithEventLimit(limit uint64) EngineOption {
	return eventLimitOption(limit)
}

// NewEngine returns an engine at virtual time zero.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{eventLimit: DefaultEventLimit}
	for _, o := range opts {
		o.apply(e)
	}
	return e
}

// SetDispatcher attaches the executor for typed events.
func (e *Engine) SetDispatcher(d Dispatcher) { e.dispatcher = d }

// SetEventLimit replaces the per-run event budget (0 restores the
// default). The processed count it is measured against is cumulative
// until Reset.
func (e *Engine) SetEventLimit(limit uint64) {
	if limit == 0 {
		limit = DefaultEventLimit
	}
	e.eventLimit = limit
}

// Reset returns the engine to virtual time zero with an empty queue,
// retaining the queue's capacity (and the dispatcher and event limit)
// so a pooled simulation can rerun without reallocating. Pending
// closure events are released.
func (e *Engine) Reset() {
	clear(e.queue) // drop closure references
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run after delay of virtual time. A negative
// delay is treated as zero (run at the current instant, after already
// queued same-time events).
func (e *Engine) Schedule(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	e.push(queuedEvent{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleTyped enqueues a typed event after delay of virtual time,
// with the same clamping and FIFO-within-instant semantics as Schedule.
// Closure and typed events share one clock and one sequence space, so
// they interleave deterministically.
func (e *Engine) ScheduleTyped(delay time.Duration, ev Typed) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	e.push(queuedEvent{at: e.now + delay, seq: e.seq, ev: ev})
}

// push appends the event and restores the 4-ary heap order.
func (e *Engine) push(ev queuedEvent) {
	e.queue = append(e.queue, ev)
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so popped closures become collectable.
func (e *Engine) pop() queuedEvent {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = queuedEvent{}
	q = q[:n]
	e.queue = q
	// Sift down with 4 children per node.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(&q[min]) {
				min = c
			}
		}
		if !q[min].before(&q[i]) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// fire executes one popped event.
func (e *Engine) fire(ev *queuedEvent) {
	if ev.fn != nil {
		ev.fn()
		return
	}
	e.dispatcher.Dispatch(ev.ev)
}

// Run executes events until the queue is empty (quiescence) or the event
// budget is exhausted.
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		if e.processed >= e.eventLimit {
			return fmt.Errorf("%w: %d events, virtual time %s", ErrEventLimit, e.processed, e.now)
		}
		ev := e.pop()
		e.now = ev.at
		e.processed++
		e.fire(&ev)
	}
	return nil
}

// RunUntil executes events with virtual timestamps <= deadline, leaving
// later events queued. It returns ErrEventLimit if the budget runs out.
func (e *Engine) RunUntil(deadline time.Duration) error {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if e.processed >= e.eventLimit {
			return fmt.Errorf("%w: %d events, virtual time %s", ErrEventLimit, e.processed, e.now)
		}
		ev := e.pop()
		e.now = ev.at
		e.processed++
		e.fire(&ev)
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
