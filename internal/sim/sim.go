// Package sim provides the deterministic discrete-event simulation
// engine underlying the AS-level BGP model (internal/simbgp). It plays
// the role SSFnet plays in the paper: a virtual clock, an event queue,
// and run-to-quiescence execution.
//
// Determinism: events scheduled for the same virtual time fire in
// scheduling order (a monotonic sequence number breaks ties), so a
// simulation with a fixed topology, fixed seeds, and fixed link delays
// always produces the same outcome.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a deferred action in virtual time.
type Event func()

type queuedEvent struct {
	at  time.Duration
	seq uint64
	fn  Event
}

type eventQueue []queuedEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(queuedEvent)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = queuedEvent{}
	*q = old[:n-1]
	return ev
}

// ErrEventLimit is returned by Run when the configured event budget is
// exhausted before the queue drains — usually a sign of a routing
// oscillation in the model under test.
var ErrEventLimit = errors.New("simulation event limit exceeded")

// Engine is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; run one Engine per goroutine (the experiment
// harness parallelizes across independent engines).
type Engine struct {
	queue      eventQueue
	now        time.Duration
	seq        uint64
	processed  uint64
	eventLimit uint64
}

// DefaultEventLimit bounds a single Run; BGP on the paper's topologies
// converges in well under this.
const DefaultEventLimit = 50_000_000

// EngineOption configures an Engine.
type EngineOption interface {
	apply(*Engine)
}

type eventLimitOption uint64

func (o eventLimitOption) apply(e *Engine) { e.eventLimit = uint64(o) }

// WithEventLimit overrides the per-run event budget.
func WithEventLimit(limit uint64) EngineOption {
	return eventLimitOption(limit)
}

// NewEngine returns an engine at virtual time zero.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{eventLimit: DefaultEventLimit}
	for _, o := range opts {
		o.apply(e)
	}
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run after delay of virtual time. A negative
// delay is treated as zero (run at the current instant, after already
// queued same-time events).
func (e *Engine) Schedule(delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, queuedEvent{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run executes events until the queue is empty (quiescence) or the event
// budget is exhausted.
func (e *Engine) Run() error {
	for len(e.queue) > 0 {
		if e.processed >= e.eventLimit {
			return fmt.Errorf("%w: %d events, virtual time %s", ErrEventLimit, e.processed, e.now)
		}
		ev := heap.Pop(&e.queue).(queuedEvent)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	return nil
}

// RunUntil executes events with virtual timestamps <= deadline, leaving
// later events queued. It returns ErrEventLimit if the budget runs out.
func (e *Engine) RunUntil(deadline time.Duration) error {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		if e.processed >= e.eventLimit {
			return fmt.Errorf("%w: %d events, virtual time %s", ErrEventLimit, e.processed, e.now)
		}
		ev := heap.Pop(&e.queue).(queuedEvent)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}
