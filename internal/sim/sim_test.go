package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d", e.Processed())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(10*time.Millisecond, func() {
		times = append(times, e.Now())
		e.Schedule(5*time.Millisecond, func() {
			times = append(times, e.Now())
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 10*time.Millisecond || times[1] != 15*time.Millisecond {
		t.Errorf("times = %v", times)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(-5*time.Millisecond, func() {
			fired = true
			if e.Now() != 10*time.Millisecond {
				t.Errorf("negative delay ran at %v", e.Now())
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("negative-delay event never ran")
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine(WithEventLimit(100))
	var bomb func()
	bomb = func() { e.Schedule(time.Millisecond, bomb) }
	e.Schedule(0, bomb)
	err := e.Run()
	if !errors.Is(err, ErrEventLimit) {
		t.Errorf("err = %v, want ErrEventLimit", err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(30*time.Millisecond, func() { got = append(got, 2) })
	if err := e.RunUntil(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("RunUntil executed %v", got)
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want deadline", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || e.Now() != 30*time.Millisecond {
		t.Errorf("after Run: got=%v now=%v", got, e.Now())
	}
}

func TestRunOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Errorf("Run on empty queue: %v", err)
	}
	if err := e.RunUntil(time.Second); err != nil {
		t.Errorf("RunUntil on empty queue: %v", err)
	}
	if e.Now() != time.Second {
		t.Errorf("RunUntil should advance the clock to the deadline; now=%v", e.Now())
	}
}
