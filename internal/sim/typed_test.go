package sim

import (
	"math/rand"
	"testing"
	"time"
)

// recorder collects dispatched typed events in order.
type recorder struct {
	got []Typed
}

func (r *recorder) Dispatch(ev Typed) { r.got = append(r.got, ev) }

func TestTypedEventsDispatchInOrder(t *testing.T) {
	e := NewEngine()
	rec := &recorder{}
	e.SetDispatcher(rec)
	e.ScheduleTyped(30*time.Millisecond, Typed{Kind: 3})
	e.ScheduleTyped(10*time.Millisecond, Typed{Kind: 1})
	e.ScheduleTyped(20*time.Millisecond, Typed{Kind: 2})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 3 || rec.got[0].Kind != 1 || rec.got[1].Kind != 2 || rec.got[2].Kind != 3 {
		t.Errorf("dispatch order = %v", rec.got)
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestTypedAndClosureEventsShareSequenceSpace(t *testing.T) {
	// Closure and typed events at the same instant must fire in
	// scheduling order — they share one seq counter.
	e := NewEngine()
	var order []int
	e.SetDispatcher(dispatchFunc(func(ev Typed) { order = append(order, int(ev.A)) }))
	for i := 0; i < 10; i++ {
		i := i
		if i%2 == 0 {
			e.Schedule(5*time.Millisecond, func() { order = append(order, i) })
		} else {
			e.ScheduleTyped(5*time.Millisecond, Typed{A: uint32(i)})
		}
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed same-time events out of scheduling order: %v", order)
		}
	}
}

type dispatchFunc func(Typed)

func (f dispatchFunc) Dispatch(ev Typed) { f(ev) }

func TestTypedNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.SetDispatcher(dispatchFunc(func(Typed) { at = e.Now() }))
	e.Schedule(10*time.Millisecond, func() {
		e.ScheduleTyped(-5*time.Millisecond, Typed{})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10*time.Millisecond {
		t.Errorf("negative-delay typed event ran at %v", at)
	}
}

// TestHeapOrderRandomized drives the 4-ary heap with a large random
// schedule (including duplicate timestamps) and asserts events pop in
// (time, seq) order — the determinism contract.
func TestHeapOrderRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEngine()
	const n = 5000
	type stamp struct {
		at  time.Duration
		seq int
	}
	var fired []stamp
	seq := 0
	for i := 0; i < n; i++ {
		d := time.Duration(rng.Intn(50)) * time.Millisecond
		s := seq
		seq++
		e.Schedule(d, func() { fired = append(fired, stamp{e.Now(), s}) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
			t.Fatalf("event %d fired out of order: %v then %v", i, a, b)
		}
	}
}

func TestReset(t *testing.T) {
	e := NewEngine(WithEventLimit(123))
	rec := &recorder{}
	e.SetDispatcher(rec)
	e.Schedule(time.Millisecond, func() {})
	e.ScheduleTyped(2*time.Millisecond, Typed{Kind: 9})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Schedule(time.Hour, func() { t.Error("stale event survived Reset") })
	e.Reset()
	if e.Now() != 0 || e.Processed() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v processed=%d pending=%d", e.Now(), e.Processed(), e.Pending())
	}
	// The engine must be fully reusable: same schedule, same outcome,
	// and the retained dispatcher and event limit still apply.
	rec.got = rec.got[:0]
	e.ScheduleTyped(2*time.Millisecond, Typed{Kind: 9})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.got) != 1 || rec.got[0].Kind != 9 {
		t.Errorf("post-Reset dispatch = %v", rec.got)
	}
	if e.Now() != 2*time.Millisecond {
		t.Errorf("post-Reset Now = %v", e.Now())
	}
}

func TestSetEventLimit(t *testing.T) {
	e := NewEngine()
	e.SetEventLimit(1)
	e.Schedule(0, func() {})
	e.Schedule(0, func() {})
	if err := e.Run(); err == nil {
		t.Fatal("expected ErrEventLimit")
	}
	e.Reset()
	e.SetEventLimit(0) // restores the default
	for i := 0; i < 10; i++ {
		e.Schedule(0, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("default limit should not trip: %v", err)
	}
}

// TestTypedSteadyStateAllocs pins the tentpole guarantee: once the
// queue has reached its high-water capacity, scheduling and running
// typed events allocates nothing.
func TestTypedSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	e.SetDispatcher(dispatchFunc(func(Typed) {}))
	// Warm the queue to its high-water mark.
	for i := 0; i < 1024; i++ {
		e.ScheduleTyped(time.Duration(i)*time.Microsecond, Typed{A: uint32(i)})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleTyped(time.Duration(i%7)*time.Microsecond, Typed{Kind: 1, A: uint32(i)})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("typed schedule+run allocates %v per run, want 0", allocs)
	}
}

// benchDispatch is a minimal dispatcher that self-propagates events so
// the benchmark measures steady-state schedule+fire cost.
type benchDispatch struct {
	e    *Engine
	left int
}

func (d *benchDispatch) Dispatch(ev Typed) {
	if d.left > 0 {
		d.left--
		d.e.ScheduleTyped(time.Millisecond, ev)
	}
}

// BenchmarkEngineEvents is the typed steady-state path: each fired
// event schedules its successor, as delivered BGP messages do.
func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	d := &benchDispatch{e: e, left: b.N}
	e.SetDispatcher(d)
	e.SetEventLimit(uint64(b.N) + 16)
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleTyped(0, Typed{Kind: 1, A: 2, B: 3})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineEventsBaseline is the pre-change shape: each event is
// a freshly allocated closure capturing its payload, the way message
// delivery used to schedule `func() { dst.receive(msg) }`.
func BenchmarkEngineEventsBaseline(b *testing.B) {
	e := NewEngine()
	e.SetEventLimit(uint64(b.N) + 16)
	left := b.N
	var fire func(payload Typed)
	fire = func(payload Typed) {
		if left > 0 {
			left--
			next := payload
			e.Schedule(time.Millisecond, func() { fire(next) })
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, func() { fire(Typed{Kind: 1, A: 2, B: 3}) })
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
