package rpki

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/telemetry"
)

func TestPDURoundTrip(t *testing.T) {
	pdus := []pdu{
		{typ: pduSerialNotify, serial: 42},
		{typ: pduSerialQuery, serial: 7},
		{typ: pduResetQuery},
		{typ: pduCacheResponse},
		{typ: pduPrefix, roa: ROA{Prefix: p("131.179.0.0/16"), MaxLen: 24, Origin: 65001}},
		{typ: pduPrefix, roa: ROA{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 1}, withdraw: true},
		{typ: pduEndOfData, serial: 99},
		{typ: pduCacheReset},
		{typ: pduError},
	}
	var buf []byte
	for _, p := range pdus {
		buf = appendPDU(buf, p)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	var scratch [maxPDULen]byte
	for i, want := range pdus {
		got, err := readPDU(br, &scratch)
		if err != nil {
			t.Fatalf("pdu %d: %v", i, err)
		}
		if got != want {
			t.Errorf("pdu %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := readPDU(br, &scratch); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestReadPDUFraming(t *testing.T) {
	good := appendPDU(nil, pdu{typ: pduPrefix, roa: ROA{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 1}})
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad version":       corrupt(func(b []byte) { b[0] = 2 }),
		"unknown type":      corrupt(func(b []byte) { b[1] = 99 }),
		"length mismatch":   corrupt(func(b []byte) { b[7] = headerLen }),
		"prefix len 33":     corrupt(func(b []byte) { b[9] = 33 }),
		"maxlen 40":         corrupt(func(b []byte) { b[10] = 40 }),
		"origin past 16bit": corrupt(func(b []byte) { b[16] = 1 }), // origin byte 0 of 4
	}
	var scratch [maxPDULen]byte
	for name, wire := range cases {
		if _, err := readPDU(bufio.NewReader(bytes.NewReader(wire)), &scratch); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// testClient wires a client against srv with a tight reconnect schedule
// and a dialer that records live connections so tests can sever them.
type testClient struct {
	store *Store
	reg   *telemetry.Registry

	mu    sync.Mutex
	conns []net.Conn

	cancel context.CancelFunc
	done   chan struct{}
}

func startClient(t *testing.T, srv *Server) *testClient {
	t.Helper()
	tc := &testClient{store: NewStore(), reg: telemetry.NewRegistry("test"), done: make(chan struct{})}
	var d net.Dialer
	c, err := NewClient(ClientConfig{
		Addr:          srv.Addr(),
		Store:         tc.store,
		ReconnectBase: time.Millisecond,
		ReconnectMax:  10 * time.Millisecond,
		Seed:          1,
		Registry:      tc.reg,
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err == nil {
				tc.mu.Lock()
				tc.conns = append(tc.conns, conn)
				tc.mu.Unlock()
			}
			return conn, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tc.cancel = cancel
	go func() {
		defer close(tc.done)
		c.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-tc.done
	})
	return tc
}

// sever closes every connection the client has dialed so far, forcing
// a reconnect.
func (tc *testClient) sever() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, c := range tc.conns {
		c.Close()
	}
	tc.conns = tc.conns[:0]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func newTestServer(t *testing.T, initial ...ROA) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, initial)
	t.Cleanup(srv.Close)
	return srv
}

func TestClientFullSync(t *testing.T) {
	r1 := ROA{Prefix: p("131.179.0.0/16"), MaxLen: 24, Origin: 65001}
	r2 := ROA{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 65002}
	srv := newTestServer(t, r1, r2)
	tc := startClient(t, srv)

	waitFor(t, "full sync", func() bool { return tc.store.Len() == 2 })
	if got := tc.store.Validate(p("131.179.7.0/24"), 65001); got != Valid {
		t.Errorf("after sync Validate = %v, want Valid", got)
	}
	text := scrapeMetrics(t, tc.reg)
	for _, want := range []string{"test_rpki_rtr_connects_total 1", "test_rpki_rtr_resets_total 1", "test_rpki_roas 2", "test_rpki_rtr_serial 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestClientIncrementalDeltas(t *testing.T) {
	r1 := ROA{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 1}
	srv := newTestServer(t, r1)
	tc := startClient(t, srv)
	waitFor(t, "initial sync", func() bool { return tc.store.Len() == 1 })

	// An announce pushed over SerialNotify reaches the store without a
	// reconnect.
	r2 := ROA{Prefix: p("131.179.0.0/16"), MaxLen: 24, Origin: 65001}
	srv.Announce(r2)
	waitFor(t, "delta announce", func() bool { return tc.store.Validate(p("131.179.0.0/16"), 65001) == Valid })

	srv.Withdraw(r1)
	waitFor(t, "delta withdraw", func() bool { return tc.store.Validate(p("10.0.0.0/8"), 1) == NotFound })

	if tc.store.Len() != 1 {
		t.Errorf("store Len = %d, want 1", tc.store.Len())
	}
	// One connect, one full reset; everything after flowed as deltas.
	text := scrapeMetrics(t, tc.reg)
	for _, want := range []string{"test_rpki_rtr_connects_total 1", "test_rpki_rtr_resets_total 1", "test_rpki_rtr_serial 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestClientReconnectCatchup(t *testing.T) {
	r1 := ROA{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 1}
	srv := newTestServer(t, r1)
	tc := startClient(t, srv)
	waitFor(t, "initial sync", func() bool { return tc.store.Len() == 1 })

	// Publish while the client is down; the reconnect's serial query
	// replays the missed window.
	tc.sever()
	r2 := ROA{Prefix: p("131.179.0.0/16"), MaxLen: 16, Origin: 65001}
	srv.Announce(r2)
	waitFor(t, "catch-up after reconnect", func() bool {
		return tc.store.Validate(p("131.179.0.0/16"), 65001) == Valid
	})
}

func TestClientCacheResetResync(t *testing.T) {
	r1 := ROA{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 1}
	srv := newTestServer(t, r1)
	tc := startClient(t, srv)
	waitFor(t, "initial sync", func() bool { return tc.store.Len() == 1 })

	// Blow past the delta window while the client is down: each publish
	// is its own serial, so maxLog+2 of them leave the log starting past
	// the client's serial and the serial query must come back CacheReset.
	tc.sever()
	var batch []ROA
	for i := 0; i < maxLog+2; i++ {
		batch = append(batch, ROA{
			Prefix: astypes.Prefix{Addr: uint32(0xc0000000 | i<<8), Len: 24},
			MaxLen: 24,
			Origin: astypes.ASN(1 + i%1000),
		})
	}
	for _, r := range batch {
		srv.Announce(r)
	}
	want := srv.Len()
	waitFor(t, "full resync after cache reset", func() bool { return tc.store.Len() == want })
	if got := tc.store.Validate(p("10.0.0.0/8"), 1); got != Valid {
		t.Errorf("pre-gap ROA lost in resync: %v", got)
	}
	text := scrapeMetrics(t, tc.reg)
	if !strings.Contains(text, "test_rpki_rtr_resets_total 2") {
		t.Errorf("expected a second full reset in metrics:\n%s", text)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{Store: NewStore()}); err == nil {
		t.Error("missing Addr accepted")
	}
	if _, err := NewClient(ClientConfig{Addr: "x:1"}); err == nil {
		t.Error("missing Store accepted")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := newTestServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			return // server hung up, as it must
		}
	}
}

func scrapeMetrics(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := telemetry.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// BenchmarkROVLookup measures the validate hot path; the emitted
// allocs/op must stay 0 (asserted by TestValidateAllocFree and the
// allocfree analyzer).
func BenchmarkROVLookup(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		s.Add(ROA{
			Prefix: astypes.Prefix{Addr: uint32(i) << 12, Len: 20},
			MaxLen: 24,
			Origin: astypes.ASN(1 + i%5000),
		})
	}
	queries := make([]astypes.Prefix, 256)
	for i := range queries {
		queries[i] = astypes.Prefix{Addr: uint32(i*37) << 12, Len: 24}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		s.Validate(q, astypes.ASN(1+i%5000))
	}
}

// BenchmarkROVFeedApply measures delta-apply throughput: the cost of
// keeping the store current under RTR announce/withdraw churn.
func BenchmarkROVFeedApply(b *testing.B) {
	roas := make([]ROA, 4096)
	for i := range roas {
		roas[i] = ROA{
			Prefix: astypes.Prefix{Addr: uint32(i) << 12, Len: 20},
			MaxLen: 24,
			Origin: astypes.ASN(1 + i%5000),
		}
	}
	s := NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := roas[i%len(roas)]
		if i%(2*len(roas)) < len(roas) {
			s.Add(r)
		} else {
			s.Remove(r)
		}
	}
}
