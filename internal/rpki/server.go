package rpki

import (
	"bufio"
	"net"
	"sync"
)

// logEntry is one published delta; serial is the cache serial after the
// delta applied.
type logEntry struct {
	serial   uint32
	roa      ROA
	withdraw bool
}

// maxLog bounds the delta window a Server retains; a client whose
// serial predates the window gets a CacheReset and resyncs in full.
const maxLog = 4096

// Server is an RTR-style cache server: it owns an authoritative ROA
// set, versions every change with a serial, answers reset queries with
// the full (deterministically ordered) set and serial queries with the
// delta log, and pushes SerialNotify to connected clients on every
// publish. It exists for tests, the simulator, and for chaining one
// collector's validated store to another; it is not a production RPKI
// cache.
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	set    *Store // authoritative set; guarded by mu for writes
	serial uint32
	log    []logEntry
	conns  []*serverConn
	closed bool

	wg sync.WaitGroup
}

// serverConn is one connected client.
type serverConn struct {
	conn    net.Conn
	writeMu sync.Mutex    // serializes response bursts and notifies
	notify  chan struct{} // capacity 1; coalesces publishes
	done    chan struct{}
}

// NewServer starts serving on ln with an initial ROA set at serial 0.
func NewServer(ln net.Listener, initial []ROA) *Server {
	set := NewStore()
	for _, r := range initial {
		set.Add(r)
	}
	s := &Server{ln: ln, set: set}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serial returns the current cache serial.
func (s *Server) Serial() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.serial
}

// Len returns the size of the authoritative set.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.set.Len()
}

// Announce publishes additions as one serial increment.
func (s *Server) Announce(roas ...ROA) { s.publish(roas, false) }

// Withdraw publishes removals as one serial increment.
func (s *Server) Withdraw(roas ...ROA) { s.publish(roas, true) }

func (s *Server) publish(roas []ROA, withdraw bool) {
	s.mu.Lock()
	changed := false
	for _, r := range roas {
		applied := false
		if withdraw {
			applied = s.set.Remove(r)
		} else {
			applied = s.set.Add(r)
		}
		if !applied {
			continue // no-op deltas don't enter the log
		}
		changed = true
		s.log = append(s.log, logEntry{serial: s.serial + 1, roa: r.normalized(), withdraw: withdraw})
	}
	if !changed {
		s.mu.Unlock()
		return
	}
	s.serial++
	if over := len(s.log) - maxLog; over > 0 {
		s.log = append(s.log[:0:0], s.log[over:]...)
	}
	conns := append([]*serverConn(nil), s.conns...)
	s.mu.Unlock()
	for _, sc := range conns {
		select {
		case sc.notify <- struct{}{}:
		default: // a pending notify already covers this serial
		}
	}
}

// Close stops the listener and hangs up every client.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := append([]*serverConn(nil), s.conns...)
	s.mu.Unlock()
	s.ln.Close()
	// Closing the conn unblocks each readLoop, whose dropConn closes
	// sc.done (exactly once) and thereby stops the notifyLoop.
	for _, sc := range conns {
		sc.conn.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		sc := &serverConn{conn: conn, notify: make(chan struct{}, 1), done: make(chan struct{})}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns = append(s.conns, sc)
		s.wg.Add(2)
		s.mu.Unlock()
		go s.readLoop(sc)
		go s.notifyLoop(sc)
	}
}

// dropConn unregisters a dead connection.
func (s *Server) dropConn(sc *serverConn) {
	sc.conn.Close()
	s.mu.Lock()
	for i, c := range s.conns {
		if c == sc {
			s.conns = append(s.conns[:i], s.conns[i+1:]...)
			close(sc.done)
			break
		}
	}
	s.mu.Unlock()
}

// readLoop answers the client's queries.
func (s *Server) readLoop(sc *serverConn) {
	defer s.wg.Done()
	defer s.dropConn(sc)
	br := bufio.NewReader(sc.conn)
	var scratch [maxPDULen]byte
	for {
		p, err := readPDU(br, &scratch)
		if err != nil {
			return
		}
		switch p.typ {
		case pduResetQuery:
			if !s.sendFull(sc) {
				return
			}
		case pduSerialQuery:
			if !s.sendDeltas(sc, p.serial) {
				return
			}
		default:
			// Clients have no other business; drop the connection rather
			// than desynchronize.
			return
		}
	}
}

// notifyLoop pushes SerialNotify whenever a publish lands.
func (s *Server) notifyLoop(sc *serverConn) {
	defer s.wg.Done()
	var buf []byte
	for {
		select {
		case <-sc.done:
			return
		case <-sc.notify:
		}
		serial := s.Serial()
		sc.writeMu.Lock()
		buf = appendPDU(buf[:0], pdu{typ: pduSerialNotify, serial: serial})
		_, err := sc.conn.Write(buf)
		sc.writeMu.Unlock()
		if err != nil {
			return
		}
	}
}

// sendFull streams the complete set: CacheResponse, every ROA in
// deterministic order, EndOfData.
func (s *Server) sendFull(sc *serverConn) bool {
	s.mu.Lock()
	roas := s.set.Snapshot()
	serial := s.serial
	s.mu.Unlock()
	buf := appendPDU(nil, pdu{typ: pduCacheResponse})
	for _, r := range roas {
		buf = appendPDU(buf, pdu{typ: pduPrefix, roa: r})
	}
	buf = appendPDU(buf, pdu{typ: pduEndOfData, serial: serial})
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	_, err := sc.conn.Write(buf)
	return err == nil
}

// sendDeltas streams the changes after the client's serial, or
// CacheReset when the window no longer reaches back that far.
func (s *Server) sendDeltas(sc *serverConn, since uint32) bool {
	s.mu.Lock()
	serial := s.serial
	var deltas []logEntry
	serveable := since <= serial
	if serveable && since < serial {
		// The log must contain every delta in (since, serial]; the first
		// needed entry is serial since+1.
		if len(s.log) == 0 || s.log[0].serial > since+1 {
			serveable = false
		} else {
			for _, e := range s.log {
				if e.serial > since {
					deltas = append(deltas, e)
				}
			}
		}
	}
	s.mu.Unlock()

	var buf []byte
	if !serveable {
		buf = appendPDU(buf, pdu{typ: pduCacheReset})
	} else {
		buf = appendPDU(buf, pdu{typ: pduCacheResponse})
		for _, e := range deltas {
			buf = appendPDU(buf, pdu{typ: pduPrefix, roa: e.roa, withdraw: e.withdraw})
		}
		buf = appendPDU(buf, pdu{typ: pduEndOfData, serial: serial})
	}
	sc.writeMu.Lock()
	defer sc.writeMu.Unlock()
	_, err := sc.conn.Write(buf)
	return err == nil
}
