package rpki

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/astypes"
)

// Parse reads the text ROA format, one record set per line:
//
//	prefix=origin[@maxlen][,origin[@maxlen]...]
//	# comments and blank lines are ignored
//	131.179.0.0/16=65001@24,65002
//
// The shape mirrors the moas-monitor MOASRR file (prefix=asn,asn); the
// optional @maxlen extends an authorization to more-specifics. A
// missing maxlen authorizes exactly the stated prefix.
func Parse(r io.Reader) ([]ROA, error) {
	var out []ROA
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("rpki: line %d: want prefix=origin[@maxlen],...", lineNo)
		}
		prefix, err := astypes.ParsePrefix(strings.TrimSpace(line[:eq]))
		if err != nil {
			return nil, fmt.Errorf("rpki: line %d: %w", lineNo, err)
		}
		fields := strings.Split(line[eq+1:], ",")
		if len(fields) == 1 && strings.TrimSpace(fields[0]) == "" {
			return nil, fmt.Errorf("rpki: line %d: no origins for %s", lineNo, prefix)
		}
		for _, f := range fields {
			f = strings.TrimSpace(f)
			spec := f
			maxLen := prefix.Len
			if at := strings.IndexByte(f, '@'); at >= 0 {
				ml, err := strconv.ParseUint(strings.TrimSpace(f[at+1:]), 10, 8)
				if err != nil || uint8(ml) < prefix.Len || ml > 32 {
					return nil, fmt.Errorf("rpki: line %d: maxlen %q out of [%d, 32]", lineNo, f[at+1:], prefix.Len)
				}
				maxLen = uint8(ml)
				spec = f[:at]
			}
			origin, err := strconv.ParseUint(strings.TrimSpace(spec), 10, 16)
			if err != nil {
				return nil, fmt.Errorf("rpki: line %d: origin %q: %w", lineNo, spec, err)
			}
			out = append(out, ROA{Prefix: prefix, MaxLen: maxLen, Origin: astypes.ASN(origin)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rpki: read: %w", err)
	}
	return out, nil
}

// ParseFile reads an ROA file (see Parse for the format).
func ParseFile(path string) ([]ROA, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("rpki: %w", err)
	}
	defer f.Close()
	roas, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("rpki: %s: %w", path, err)
	}
	return roas, nil
}
