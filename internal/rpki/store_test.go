package rpki

import (
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
)

func p(s string) astypes.Prefix {
	prefix, err := astypes.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return prefix
}

func TestValidateSemantics(t *testing.T) {
	s := NewStore()
	s.Add(ROA{Prefix: p("131.179.0.0/16"), MaxLen: 24, Origin: 65001})
	s.Add(ROA{Prefix: p("10.0.0.0/8"), Origin: 65002})

	tests := []struct {
		prefix astypes.Prefix
		origin astypes.ASN
		want   Validity
	}{
		// Authorized origin at the covered lengths.
		{p("131.179.0.0/16"), 65001, Valid},
		{p("131.179.7.0/24"), 65001, Valid},
		// More specific than maxLen: covered but not authorized.
		{p("131.179.7.128/25"), 65001, Invalid},
		// Wrong origin under a covering ROA.
		{p("131.179.0.0/16"), 64999, Invalid},
		{p("131.179.7.0/24"), 64999, Invalid},
		// MaxLen defaulting to the prefix length: /8 valid, /9 not.
		{p("10.0.0.0/8"), 65002, Valid},
		{p("10.128.0.0/9"), 65002, Invalid},
		// Nothing covers these at all.
		{p("192.168.0.0/16"), 65001, NotFound},
		{p("131.0.0.0/8"), 65001, NotFound}, // less specific than the ROA
	}
	for _, tt := range tests {
		if got := s.Validate(tt.prefix, tt.origin); got != tt.want {
			t.Errorf("Validate(%v, AS%d) = %v, want %v", tt.prefix, tt.origin, got, tt.want)
		}
	}

	// A second ROA for another origin turns Invalid back into Valid for
	// that origin without disturbing the first.
	s.Add(ROA{Prefix: p("131.179.0.0/16"), MaxLen: 16, Origin: 64999})
	if got := s.Validate(p("131.179.0.0/16"), 64999); got != Valid {
		t.Errorf("second-origin ROA ignored: %v", got)
	}
	if got := s.Validate(p("131.179.7.0/24"), 64999); got != Invalid {
		t.Errorf("second-origin maxlen not honored: %v", got)
	}

	// A nil store validates everything to NotFound.
	var nilStore *Store
	if got := nilStore.Validate(p("131.179.0.0/16"), 65001); got != NotFound {
		t.Errorf("nil store = %v, want NotFound", got)
	}
	if nilStore.Len() != 0 || nilStore.Snapshot() != nil {
		t.Error("nil store should be empty")
	}
}

func TestAddRemoveReplace(t *testing.T) {
	s := NewStore()
	r1 := ROA{Prefix: p("10.0.0.0/8"), MaxLen: 16, Origin: 1}
	r2 := ROA{Prefix: p("10.0.0.0/8"), MaxLen: 16, Origin: 2}
	if !s.Add(r1) || !s.Add(r2) {
		t.Fatal("fresh adds reported not-new")
	}
	if s.Add(r1) {
		t.Error("duplicate add reported new")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Remove(r1) {
		t.Error("remove existing failed")
	}
	if s.Remove(r1) {
		t.Error("double remove succeeded")
	}
	if s.Validate(p("10.1.0.0/16"), 1) != Invalid {
		t.Error("removed ROA still validates")
	}
	if s.Validate(p("10.1.0.0/16"), 2) != Valid {
		t.Error("sibling ROA lost on remove")
	}
	s.Remove(r2)
	if s.Len() != 0 || s.Validate(p("10.1.0.0/16"), 2) != NotFound {
		t.Error("store not empty after removing everything")
	}

	s.ReplaceAll([]ROA{r1, r2, r1}) // duplicate collapses
	if s.Len() != 2 {
		t.Errorf("ReplaceAll Len = %d, want 2", s.Len())
	}
	s.ReplaceAll(nil)
	if s.Len() != 0 {
		t.Errorf("ReplaceAll(nil) Len = %d, want 0", s.Len())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []ROA) []ROA {
		s := NewStore()
		for _, r := range order {
			s.Add(r)
		}
		return s.Snapshot()
	}
	roas := []ROA{
		{Prefix: p("10.0.0.0/8"), MaxLen: 24, Origin: 7},
		{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 9},
		{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 3},
		{Prefix: p("9.0.0.0/8"), Origin: 1},
		{Prefix: p("10.1.0.0/16"), Origin: 2},
	}
	fwd := build(roas)
	rev := build([]ROA{roas[4], roas[3], roas[2], roas[1], roas[0]})
	if len(fwd) != len(rev) || len(fwd) != 5 {
		t.Fatalf("snapshots %v vs %v", fwd, rev)
	}
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("insertion order leaked into snapshot: %v vs %v", fwd, rev)
		}
		if i > 0 && !roaLess(fwd[i-1], fwd[i]) {
			t.Fatalf("snapshot not sorted: %v", fwd)
		}
	}
}

func TestROANormalization(t *testing.T) {
	s := NewStore()
	// Host bits are masked; MaxLen below the length snaps to the length.
	s.Add(ROA{Prefix: astypes.Prefix{Addr: 0x0a010203, Len: 16}, MaxLen: 8, Origin: 5})
	if !s.Remove(ROA{Prefix: p("10.1.0.0/16"), Origin: 5}) {
		t.Error("normalized forms did not match")
	}
}

// TestValidateAllocFree is the AllocsPerRun guard behind the
// //repro:allocfree annotation on the lookup path.
func TestValidateAllocFree(t *testing.T) {
	s := NewStore()
	s.Add(ROA{Prefix: p("131.179.0.0/16"), MaxLen: 24, Origin: 65001})
	s.Add(ROA{Prefix: p("131.0.0.0/8"), Origin: 65000})
	s.Add(ROA{Prefix: p("0.0.0.0/0"), Origin: 64000})
	queries := []struct {
		prefix astypes.Prefix
		origin astypes.ASN
	}{
		{p("131.179.7.0/24"), 65001}, // Valid
		{p("131.179.7.0/24"), 64999}, // Invalid
		{p("131.179.0.0/16"), 65001}, // Valid at the root of the ROA
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			s.Validate(q.prefix, q.origin)
		}
	})
	if allocs != 0 {
		t.Errorf("Validate allocates %v per run, want 0", allocs)
	}
}

func TestClassifyMatrix(t *testing.T) {
	tests := []struct {
		v       Validity
		verdict core.Verdict
		want    Class
	}{
		{Invalid, core.VerdictConflict, ClassLikelyHijack},
		{Invalid, core.VerdictOriginNotListed, ClassLikelyHijack},
		{Valid, core.VerdictConflict, ClassLikelyMisconfig},
		{Valid, core.VerdictOriginNotListed, ClassLikelyMisconfig},
		{NotFound, core.VerdictConflict, ClassBenignMOAS},
		{NotFound, core.VerdictOriginNotListed, ClassLikelyMisconfig},
		{NotFound, core.VerdictUnset, ClassBenignMOAS},
	}
	for _, tt := range tests {
		if got := Classify(tt.v, tt.verdict); got != tt.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tt.v, tt.verdict, got, tt.want)
		}
	}
	if ClassBenignMOAS.String() != "benign-moas" ||
		ClassLikelyMisconfig.String() != "likely-misconfig" ||
		ClassLikelyHijack.String() != "likely-hijack" {
		t.Error("class strings wrong")
	}
	if NotFound.String() != "not-found" || Valid.String() != "valid" || Invalid.String() != "invalid" {
		t.Error("validity strings wrong")
	}
}

func TestParse(t *testing.T) {
	const text = `
# covering ROAs for the e2e prefix
131.179.0.0/16=65001@24,65002

10.0.0.0/8 = 65003
`
	roas, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := []ROA{
		{Prefix: p("131.179.0.0/16"), MaxLen: 24, Origin: 65001},
		{Prefix: p("131.179.0.0/16"), MaxLen: 16, Origin: 65002},
		{Prefix: p("10.0.0.0/8"), MaxLen: 8, Origin: 65003},
	}
	if len(roas) != len(want) {
		t.Fatalf("parsed %v, want %v", roas, want)
	}
	for i := range want {
		if roas[i].normalized() != want[i].normalized() {
			t.Errorf("roas[%d] = %v, want %v", i, roas[i], want[i])
		}
	}

	bad := []string{
		"131.179.0.0/16",         // no origins
		"131.179.0.0/16=",        // empty origin list
		"banana=65001",           // bad prefix
		"10.0.0.0/8=notanumber",  // bad origin
		"10.0.0.0/8=65001@4",     // maxlen below prefix length
		"10.0.0.0/8=65001@40",    // maxlen beyond 32
		"10.0.0.0/8=65001,70000", // origin outside uint16
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("Parse(%q) accepted", line)
		}
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/roas.txt"); err == nil {
		t.Error("missing file accepted")
	}
}
