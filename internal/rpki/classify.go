package rpki

import "repro/internal/core"

// Class labels one MOAS alarm by crossing the ROV outcome with the
// MOAS checker's verdict — the detector's raw alarm stream becomes the
// benign/misconfiguration/hijack breakdown the evaluation figures need.
type Class uint8

const (
	// ClassBenignMOAS: the RPKI is silent and the conflict looks like an
	// ordinary multi-origin disagreement (multihoming, anycast, a
	// transition between providers). An operator should still look, but
	// nothing marks either origin as unauthorized.
	ClassBenignMOAS Class = iota
	// ClassLikelyMisconfig: the evidence points at sloppy configuration
	// rather than an attack — either the RPKI *authorizes* the
	// conflicting origin (so the MOAS lists are stale or incomplete), or
	// the announcement is self-inconsistent (its own origin missing from
	// the MOAS list it carries) with no ROA to adjudicate.
	ClassLikelyMisconfig
	// ClassLikelyHijack: a covering ROA exists and the announced origin
	// is not authorized — the strongest signal the paper's mechanism can
	// be given that the conflict is an actual origin hijack.
	ClassLikelyHijack

	// NumClasses sizes per-class counter arrays indexed by Class.
	NumClasses = 3
)

func (c Class) String() string {
	switch c {
	case ClassLikelyMisconfig:
		return "likely-misconfig"
	case ClassLikelyHijack:
		return "likely-hijack"
	default:
		return "benign-moas"
	}
}

// Classify crosses an ROV outcome with a MOAS verdict:
//
//	ROV result  × MOAS verdict       → class
//	Invalid     × any                → likely-hijack
//	Valid       × any                → likely-misconfig (origin is
//	             authorized; the MOAS lists, not the route, are wrong)
//	NotFound    × origin-not-listed  → likely-misconfig (self-
//	             inconsistent announcement, §4.1)
//	NotFound    × conflict (or any other) → benign-moas
//
// Call it with the Validity from Store.Validate — a nil store yields
// NotFound, so unconfigured deployments degrade to the pure MOAS-list
// provenance classes.
func Classify(v Validity, verdict core.Verdict) Class {
	switch v {
	case Invalid:
		return ClassLikelyHijack
	case Valid:
		return ClassLikelyMisconfig
	default:
		if verdict == core.VerdictOriginNotListed {
			return ClassLikelyMisconfig
		}
		return ClassBenignMOAS
	}
}
