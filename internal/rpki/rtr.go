package rpki

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/astypes"
	"repro/internal/backoff"
	"repro/internal/telemetry"
)

// The RTR-style feed speaks a simplified RPKI-to-Router protocol
// (RFC 8210 shapes, IPv4 only): fixed 8-byte headers framing small
// PDUs, a cache serial for incremental catch-up, and the
// reset/serial-query handshake. Framing follows the internal/wire
// idioms — the header is validated fail-fast before any body byte is
// consumed, and decode works out of a fixed scratch buffer so the
// client's steady state allocates nothing per PDU.
const (
	rtrVersion = 1
	headerLen  = 8
	// maxPDULen bounds any body this protocol can legitimately send; a
	// length beyond it is a framing error, detected before the body is
	// read (a corrupt length must not make the reader swallow the
	// stream).
	maxPDULen = 32
)

// PDU types (RFC 8210 numbering where a counterpart exists).
const (
	pduSerialNotify  = 0 // server → client: new serial available
	pduSerialQuery   = 1 // client → server: deltas since my serial
	pduResetQuery    = 2 // client → server: send the full set
	pduCacheResponse = 3 // server → client: response stream follows
	pduPrefix        = 4 // server → client: one announce/withdraw
	pduEndOfData     = 7 // server → client: response done, new serial
	pduCacheReset    = 8 // server → client: can't serve that serial
	pduError         = 10
)

// flagAnnounce distinguishes announce (1) from withdraw (0) in a
// Prefix PDU.
const flagAnnounce = 1

// pduLen is the exact on-wire size per type; a mismatch is a framing
// error.
var pduLen = map[byte]uint32{
	pduSerialNotify:  headerLen + 4,
	pduSerialQuery:   headerLen + 4,
	pduResetQuery:    headerLen,
	pduCacheResponse: headerLen,
	pduPrefix:        headerLen + 12,
	pduEndOfData:     headerLen + 4,
	pduCacheReset:    headerLen,
	pduError:         headerLen,
}

// pdu is the decoded form of any protocol message.
type pdu struct {
	typ      byte
	serial   uint32
	roa      ROA
	withdraw bool
}

// appendPDU encodes p onto dst (append-in-place, wire-style).
func appendPDU(dst []byte, p pdu) []byte {
	length := pduLen[p.typ]
	dst = append(dst, rtrVersion, p.typ, 0, 0)
	dst = binary.BigEndian.AppendUint32(dst, length)
	switch p.typ {
	case pduSerialNotify, pduSerialQuery, pduEndOfData:
		dst = binary.BigEndian.AppendUint32(dst, p.serial)
	case pduPrefix:
		flags := byte(0)
		if !p.withdraw {
			flags = flagAnnounce
		}
		dst = append(dst, flags, p.roa.Prefix.Len, p.roa.MaxLen, 0)
		dst = binary.BigEndian.AppendUint32(dst, p.roa.Prefix.Addr)
		dst = binary.BigEndian.AppendUint32(dst, uint32(p.roa.Origin))
	}
	return dst
}

// readPDU reads one PDU into scratch, validating the header before any
// body byte is consumed.
func readPDU(br *bufio.Reader, scratch *[maxPDULen]byte) (pdu, error) {
	h := scratch[:headerLen]
	if _, err := io.ReadFull(br, h); err != nil {
		return pdu{}, err
	}
	if h[0] != rtrVersion {
		return pdu{}, fmt.Errorf("rpki: rtr version %d (want %d)", h[0], rtrVersion)
	}
	typ := h[1]
	want, known := pduLen[typ]
	length := binary.BigEndian.Uint32(h[4:8])
	if !known {
		return pdu{}, fmt.Errorf("rpki: unknown rtr pdu type %d", typ)
	}
	if length != want {
		return pdu{}, fmt.Errorf("rpki: rtr pdu type %d length %d (want %d)", typ, length, want)
	}
	p := pdu{typ: typ}
	if length == headerLen {
		return p, nil
	}
	body := scratch[headerLen:length]
	if _, err := io.ReadFull(br, body); err != nil {
		return pdu{}, err
	}
	switch typ {
	case pduSerialNotify, pduSerialQuery, pduEndOfData:
		p.serial = binary.BigEndian.Uint32(body)
	case pduPrefix:
		if body[1] > 32 || body[2] > 32 {
			return pdu{}, fmt.Errorf("rpki: rtr prefix lengths %d/%d out of range", body[1], body[2])
		}
		p.withdraw = body[0]&flagAnnounce == 0
		p.roa.Prefix.Len = body[1]
		p.roa.MaxLen = body[2]
		p.roa.Prefix.Addr = binary.BigEndian.Uint32(body[4:8])
		// The wire carries 4-byte ASNs (RFC 8210); this codebase works in
		// the paper-era 16-bit space, so out-of-range origins are a
		// framing error rather than a silent truncation.
		origin := binary.BigEndian.Uint32(body[8:12])
		if origin > 0xffff {
			return pdu{}, fmt.Errorf("rpki: rtr origin AS%d outside the 16-bit space", origin)
		}
		p.roa.Origin = astypes.ASN(origin)
	}
	return p, nil
}

// ClientConfig parameterizes an RTR client.
type ClientConfig struct {
	// Addr is the cache server ("host:port").
	Addr string
	// Store receives the validated ROA set.
	Store *Store
	// ReconnectBase and ReconnectMax bound the shared backoff schedule
	// (1s and 30s when zero) — the same machinery as the daemon's peer
	// re-dial loop and the RIS-Live stage.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Seed fixes the reconnect jitter for tests; 0 lets backoff draw a
	// per-instance wall-clock seed.
	Seed int64
	// Dial overrides the dialer (a plain net.Dialer when nil).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Registry receives the client's counters when non-nil.
	Registry *telemetry.Registry
}

// Client maintains an RTR session against a cache server, applying its
// add/withdraw deltas to the Store and resyncing from scratch when the
// server can no longer serve the client's serial.
type Client struct {
	cfg ClientConfig
	jit *backoff.Jitter

	serial uint32 // last EndOfData serial; meaningful when synced
	synced bool
	// everSynced flips once the first end-of-data lands; batch callers
	// poll Synced before trusting the store.
	everSynced atomic.Bool

	mConnects *telemetry.Counter
	mResets   *telemetry.Counter
	mROAs     *telemetry.Gauge
	mSerial   *telemetry.Gauge
}

// NewClient returns a client; drive it with Run.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("rpki: rtr client requires an address")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("rpki: rtr client requires a store")
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = time.Second
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 30 * time.Second
	}
	if cfg.Dial == nil {
		var d net.Dialer
		cfg.Dial = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	c := &Client{cfg: cfg, jit: backoff.NewJitter(cfg.Seed)}
	if r := cfg.Registry; r != nil {
		c.mConnects = r.Counter("rpki_rtr_connects_total", "RTR cache connections established.")
		c.mResets = r.Counter("rpki_rtr_resets_total", "Full cache resyncs (reset queries answered).")
		c.mROAs = r.Gauge("rpki_roas", "ROAs currently held in the validated store.")
		c.mSerial = r.Gauge("rpki_rtr_serial", "Last cache serial acknowledged by EndOfData.")
	}
	return c, nil
}

// Synced reports whether at least one end-of-data has landed — i.e.
// the store has held a complete cache snapshot at some point.
func (c *Client) Synced() bool { return c.everSynced.Load() }

// Run dials and re-dials the cache until ctx is canceled. Connection
// loss at any point is just another backoff-and-retry; a session that
// reached end-of-data resets the backoff.
func (c *Client) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := c.cfg.Dial(ctx, c.cfg.Addr)
		if err == nil {
			if c.mConnects != nil {
				c.mConnects.Inc()
			}
			if c.session(ctx, conn) {
				attempt = 0
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		delay := c.jit.Delay(c.cfg.ReconnectBase, c.cfg.ReconnectMax, attempt)
		attempt++
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// session runs one connection until it breaks, reporting whether any
// end-of-data was reached (i.e. the session did useful work).
func (c *Client) session(ctx context.Context, conn net.Conn) (progressed bool) {
	defer conn.Close()
	unhook := context.AfterFunc(ctx, func() { conn.Close() })
	defer unhook()

	br := bufio.NewReaderSize(conn, 4<<10)
	var scratch [maxPDULen]byte
	var wbuf []byte
	sendQuery := func() error {
		q := pdu{typ: pduResetQuery}
		if c.synced {
			q = pdu{typ: pduSerialQuery, serial: c.serial}
		}
		wbuf = appendPDU(wbuf[:0], q)
		_, err := conn.Write(wbuf)
		return err
	}
	if sendQuery() != nil {
		return false
	}

	var full []ROA      // accumulates a full (post-reset-query) response
	inResponse := false // between CacheResponse and EndOfData
	fullResponse := false
	pendingNotify := false
	for {
		p, err := readPDU(br, &scratch)
		if err != nil {
			return progressed
		}
		switch p.typ {
		case pduCacheResponse:
			inResponse = true
			fullResponse = !c.synced
			full = full[:0]
		case pduPrefix:
			if !inResponse {
				return progressed // protocol violation; reconnect
			}
			switch {
			case fullResponse:
				if !p.withdraw {
					full = append(full, p.roa)
				}
			case p.withdraw:
				c.cfg.Store.Remove(p.roa)
			default:
				c.cfg.Store.Add(p.roa)
			}
		case pduEndOfData:
			if !inResponse {
				return progressed
			}
			if fullResponse {
				c.cfg.Store.ReplaceAll(full)
				if c.mResets != nil {
					c.mResets.Inc()
				}
			}
			inResponse = false
			c.serial = p.serial
			c.synced = true
			c.everSynced.Store(true)
			progressed = true
			if c.mROAs != nil {
				c.mROAs.Set(int64(c.cfg.Store.Len()))
				c.mSerial.Set(int64(p.serial))
			}
			if pendingNotify {
				pendingNotify = false
				if sendQuery() != nil {
					return progressed
				}
			}
		case pduCacheReset:
			// The server can't produce deltas from our serial; fall back
			// to a full resync on the same connection.
			c.synced = false
			if sendQuery() != nil {
				return progressed
			}
		case pduSerialNotify:
			if inResponse {
				pendingNotify = true
			} else if p.serial != c.serial || !c.synced {
				if sendQuery() != nil {
					return progressed
				}
			}
		case pduError:
			return progressed
		}
	}
}
