// Package rpki provides origin validation (ROV) for the MOAS detector:
// an ROA store keyed by a prefix trie, an RTR-style incremental feed,
// and the classification that crosses an ROV outcome with the MOAS
// checker's verdict to label every alarm bundle benign-moas /
// likely-misconfig / likely-hijack.
//
// The MOAS-list mechanism (the paper's contribution) detects that two
// origins disagree; it cannot say which one is entitled to the prefix.
// A Route Origin Authorization can: if the cryptographically published
// ROA set covers the prefix and the announced origin is not authorized,
// the announcement is Invalid and the alarm is very likely a hijack.
// Conversely most long-lived MOAS conflicts are benign (multihoming,
// anycast), so an uncovered conflict stays a benign-moas observation.
//
// Validate is allocation-free (//repro:allocfree, enforced by the
// allocfree analyzer and an AllocsPerRun guard) so the live path can
// cross-check every conflict at alarm rate.
package rpki

import (
	"fmt"
	"sync"

	"repro/internal/astypes"
	"repro/internal/ptrie"
)

// ROA is one Route Origin Authorization: Origin may announce Prefix and
// any more-specific of it up to MaxLen. A MaxLen of 0 (or below the
// prefix length) means "exactly this prefix".
type ROA struct {
	Prefix astypes.Prefix
	MaxLen uint8
	Origin astypes.ASN
}

// normalized masks stray host bits and resolves the MaxLen default so
// equal authorizations compare equal.
func (r ROA) normalized() ROA {
	if r.Prefix.Len > 32 {
		r.Prefix.Len = 32
	}
	var mask uint32
	if r.Prefix.Len > 0 {
		mask = ^uint32(0) << (32 - r.Prefix.Len)
	}
	r.Prefix.Addr &= mask
	if r.MaxLen < r.Prefix.Len || r.MaxLen > 32 {
		r.MaxLen = r.Prefix.Len
	}
	return r
}

func (r ROA) String() string {
	if r.MaxLen > r.Prefix.Len {
		return fmt.Sprintf("%s@%d=>AS%d", r.Prefix, r.MaxLen, r.Origin)
	}
	return fmt.Sprintf("%s=>AS%d", r.Prefix, r.Origin)
}

// roaLess orders ROAs by (address, length, maxLen, origin); the store
// and the RTR server emit snapshots in this order so full-feed streams
// are deterministic.
func roaLess(a, b ROA) bool {
	if a.Prefix.Addr != b.Prefix.Addr {
		return a.Prefix.Addr < b.Prefix.Addr
	}
	if a.Prefix.Len != b.Prefix.Len {
		return a.Prefix.Len < b.Prefix.Len
	}
	if a.MaxLen != b.MaxLen {
		return a.MaxLen < b.MaxLen
	}
	return a.Origin < b.Origin
}

// entry is the per-prefix payload: one authorized (origin, maxLen)
// pair. All entries under one trie node share the node's prefix.
type entry struct {
	maxLen uint8
	origin astypes.ASN
}

// Validity is the RFC 6811 origin-validation outcome.
type Validity uint8

const (
	// NotFound: no ROA covers the announced prefix — the RPKI is silent.
	NotFound Validity = iota
	// Valid: a covering ROA authorizes the announced origin at the
	// announced length.
	Valid
	// Invalid: at least one ROA covers the prefix but none authorizes
	// this (origin, length) pair.
	Invalid
)

func (v Validity) String() string {
	switch v {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return "not-found"
	}
}

// Store is a concurrent-read ROA table keyed by a prefix trie. Writers
// (the RTR client, config loaders) take the write lock; Validate runs
// under the read lock and allocates nothing.
type Store struct {
	mu    sync.RWMutex
	trie  *ptrie.Trie[[]entry]
	count int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{trie: ptrie.New[[]entry]()}
}

// Len returns the number of ROAs held. A nil store holds none.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Add inserts one ROA, reporting whether it was new.
func (s *Store) Add(r ROA) bool {
	r = r.normalized()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addLocked(r)
}

func (s *Store) addLocked(r ROA) bool {
	entries, _ := s.trie.Get(r.Prefix)
	at := len(entries)
	for i, e := range entries {
		if e.maxLen == r.MaxLen && e.origin == r.Origin {
			return false
		}
		if r.MaxLen < e.maxLen || (r.MaxLen == e.maxLen && r.Origin < e.origin) {
			at = i
			break
		}
	}
	// Keep entries sorted by (maxLen, origin) so snapshots are
	// deterministic regardless of feed arrival order.
	entries = append(entries, entry{})
	copy(entries[at+1:], entries[at:])
	entries[at] = entry{maxLen: r.MaxLen, origin: r.Origin}
	s.trie.Insert(r.Prefix, entries)
	s.count++
	return true
}

// Remove deletes one ROA, reporting whether it existed.
func (s *Store) Remove(r ROA) bool {
	r = r.normalized()
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, ok := s.trie.Get(r.Prefix)
	if !ok {
		return false
	}
	for i, e := range entries {
		if e.maxLen == r.MaxLen && e.origin == r.Origin {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				s.trie.Delete(r.Prefix)
			} else {
				s.trie.Insert(r.Prefix, entries)
			}
			s.count--
			return true
		}
	}
	return false
}

// ReplaceAll atomically swaps the store's contents for the given set —
// the RTR client uses it to land a full cache response without readers
// ever seeing a half-loaded table.
func (s *Store) ReplaceAll(roas []ROA) {
	trie := ptrie.New[[]entry]()
	count := 0
	tmp := &Store{trie: trie}
	for _, r := range roas {
		if tmp.addLocked(r.normalized()) {
			count++
		}
	}
	s.mu.Lock()
	s.trie = tmp.trie
	s.count = count
	s.mu.Unlock()
}

// Snapshot returns every ROA in deterministic (address, length, maxLen,
// origin) order.
func (s *Store) Snapshot() []ROA {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ROA, 0, s.count)
	s.trie.Walk(func(prefix astypes.Prefix, entries []entry) bool {
		for _, e := range entries {
			out = append(out, ROA{Prefix: prefix, MaxLen: e.maxLen, Origin: e.origin})
		}
		return true
	})
	return out
}

// Validate computes the RFC 6811 outcome for an announcement: Valid if
// any covering ROA authorizes origin at the announced length, Invalid
// if the prefix is covered but no ROA matches, NotFound if no ROA
// covers it at all. A nil store validates everything to NotFound, so
// call sites need no RPKI-configured guard.
//
//repro:allocfree
func (s *Store) Validate(prefix astypes.Prefix, origin astypes.ASN) Validity {
	if s == nil {
		return NotFound
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	v := NotFound
	it := s.trie.CoverIter(prefix)
	for {
		_, entries, ok := it.Next()
		if !ok {
			return v
		}
		if len(entries) > 0 {
			v = Invalid // covered; upgraded to Valid on a match
		}
		for _, e := range entries {
			if e.origin == origin && prefix.Len <= e.maxLen {
				return Valid
			}
		}
	}
}
