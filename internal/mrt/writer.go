package mrt

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// Writer emits MRT records. It exists for the test battery — golden
// fixtures, the Writer↔Reader round-trip property test, synthetic
// 100k-prefix tables for the cold-load benchmark — and for generating
// replayable traces in e2e tests; the production pipeline only reads.
// Not safe for concurrent use.
type Writer struct {
	w    io.Writer
	rec  []byte // header + body assembly
	body []byte // body scratch
	msg  []byte // embedded BGP message scratch
}

// NewWriter returns a Writer emitting records to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// writeRecord frames body as one MRT record and writes it in a single
// Write call.
func (wr *Writer) writeRecord(t time.Time, typ, sub uint16, body []byte) error {
	if len(body) > MaxRecordLen {
		return fmt.Errorf("mrt: record body %d bytes exceeds max %d", len(body), MaxRecordLen)
	}
	wr.rec = wr.rec[:0]
	wr.rec = binary.BigEndian.AppendUint32(wr.rec, uint32(t.Unix()))
	wr.rec = binary.BigEndian.AppendUint16(wr.rec, typ)
	wr.rec = binary.BigEndian.AppendUint16(wr.rec, sub)
	wr.rec = binary.BigEndian.AppendUint32(wr.rec, uint32(len(body)))
	wr.rec = append(wr.rec, body...)
	_, err := wr.w.Write(wr.rec)
	return err
}

// WriteRaw emits one record with an arbitrary type, subtype and body —
// the escape hatch for fixtures the typed writers cannot express
// (records the reader skips, deliberately malformed bodies, AS_PATHs
// with out-of-range AS numbers).
func (wr *Writer) WriteRaw(t time.Time, typ, sub uint16, body []byte) error {
	return wr.writeRecord(t, typ, sub, body)
}

// WritePeerIndex emits a TABLE_DUMP_V2 PEER_INDEX_TABLE. Peers with
// AS > 65535 are encoded with the 4-byte-AS peer type bit; IPv6 peers
// get a zero address (the Peer type does not carry one).
func (wr *Writer) WritePeerIndex(t time.Time, collectorID uint32, viewName string, peers []Peer) error {
	if len(viewName) > 0xffff || len(peers) > 0xffff {
		return fmt.Errorf("mrt: peer index table too large")
	}
	b := wr.body[:0]
	b = binary.BigEndian.AppendUint32(b, collectorID)
	b = binary.BigEndian.AppendUint16(b, uint16(len(viewName)))
	b = append(b, viewName...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(peers)))
	for _, p := range peers {
		as4 := p.AS > 0xffff
		var pt uint8
		if p.IPv6 {
			pt |= 0x01
		}
		if as4 {
			pt |= 0x02
		}
		b = append(b, pt)
		b = binary.BigEndian.AppendUint32(b, p.BGPID)
		if p.IPv6 {
			b = append(b, make([]byte, 16)...)
		} else {
			b = binary.BigEndian.AppendUint32(b, p.IP)
		}
		if as4 {
			b = binary.BigEndian.AppendUint32(b, p.AS)
		} else {
			b = binary.BigEndian.AppendUint16(b, uint16(p.AS))
		}
	}
	wr.body = b
	return wr.writeRecord(t, TypeTableDumpV2, SubPeerIndexTable, b)
}

// WriteRIB emits a TABLE_DUMP_V2 RIB_IPV4_UNICAST record: one prefix
// with its per-peer entries. AS_PATH values are encoded 4-byte wide, as
// the format requires. Entry attributes emitted: ORIGIN, AS_PATH and
// NEXT_HOP always; LOCAL_PREF and COMMUNITY when present.
func (wr *Writer) WriteRIB(t time.Time, seq uint32, prefix astypes.Prefix, entries []RIBEntry) error {
	if prefix.Len > 32 {
		return fmt.Errorf("mrt: prefix length %d out of range", prefix.Len)
	}
	if len(entries) > 0xffff {
		return fmt.Errorf("mrt: %d RIB entries exceed uint16", len(entries))
	}
	b := wr.body[:0]
	b = binary.BigEndian.AppendUint32(b, seq)
	b = appendPrefix(b, prefix)
	b = binary.BigEndian.AppendUint16(b, uint16(len(entries)))
	for i, e := range entries {
		b = binary.BigEndian.AppendUint16(b, e.PeerIndex)
		b = binary.BigEndian.AppendUint32(b, e.Originated)
		aOff := len(b)
		b = append(b, 0, 0) // attribute length, fixed up below
		var err error
		b, err = appendRIBAttrs(b, &e)
		if err != nil {
			return fmt.Errorf("mrt: RIB entry %d: %w", i, err)
		}
		aLen := len(b) - aOff - 2
		if aLen > 0xffff {
			return fmt.Errorf("mrt: RIB entry %d attributes %d bytes exceed uint16", i, aLen)
		}
		binary.BigEndian.PutUint16(b[aOff:], uint16(aLen))
	}
	wr.body = b
	return wr.writeRecord(t, TypeTableDumpV2, SubRIBIPv4Unicast, b)
}

// WriteUpdate emits a BGP4MP MESSAGE record carrying u as a standard
// 2-byte-AS UPDATE (encoded by the wire codec).
func (wr *Writer) WriteUpdate(t time.Time, peerAS, localAS astypes.ASN, peerIP, localIP uint32, u *wire.Update) error {
	msg, err := wire.AppendMessage(wr.msg[:0], u)
	if err != nil {
		return fmt.Errorf("mrt: encode UPDATE: %w", err)
	}
	wr.msg = msg
	b := wr.body[:0]
	b = binary.BigEndian.AppendUint16(b, uint16(peerAS))
	b = binary.BigEndian.AppendUint16(b, uint16(localAS))
	b = binary.BigEndian.AppendUint16(b, 0) // interface index
	b = binary.BigEndian.AppendUint16(b, 1) // AFI IPv4
	b = binary.BigEndian.AppendUint32(b, peerIP)
	b = binary.BigEndian.AppendUint32(b, localIP)
	b = append(b, msg...)
	wr.body = b
	return wr.writeRecord(t, TypeBGP4MP, SubMessage, b)
}

// WriteUpdateAS4 emits a BGP4MP MESSAGE_AS4 record: 4-byte AS numbers
// in the peer header and a 4-byte-wide AS_PATH in the embedded UPDATE
// (widened from u's 16-bit values; AS numbers above 65535 need WriteRaw
// with a hand-built body).
func (wr *Writer) WriteUpdateAS4(t time.Time, peerAS, localAS uint32, peerIP, localIP uint32, u *wire.Update) error {
	msg, err := appendUpdateAS4(wr.msg[:0], u)
	if err != nil {
		return fmt.Errorf("mrt: encode AS4 UPDATE: %w", err)
	}
	wr.msg = msg
	b := wr.body[:0]
	b = binary.BigEndian.AppendUint32(b, peerAS)
	b = binary.BigEndian.AppendUint32(b, localAS)
	b = binary.BigEndian.AppendUint16(b, 0) // interface index
	b = binary.BigEndian.AppendUint16(b, 1) // AFI IPv4
	b = binary.BigEndian.AppendUint32(b, peerIP)
	b = binary.BigEndian.AppendUint32(b, localIP)
	b = append(b, msg...)
	wr.body = b
	return wr.writeRecord(t, TypeBGP4MP, SubMessageAS4, b)
}

// WriteStateChange emits a BGP4MP STATE_CHANGE record.
func (wr *Writer) WriteStateChange(t time.Time, peerAS, localAS astypes.ASN, peerIP, localIP uint32, oldState, newState uint16) error {
	b := wr.body[:0]
	b = binary.BigEndian.AppendUint16(b, uint16(peerAS))
	b = binary.BigEndian.AppendUint16(b, uint16(localAS))
	b = binary.BigEndian.AppendUint16(b, 0) // interface index
	b = binary.BigEndian.AppendUint16(b, 1) // AFI IPv4
	b = binary.BigEndian.AppendUint32(b, peerIP)
	b = binary.BigEndian.AppendUint32(b, localIP)
	b = binary.BigEndian.AppendUint16(b, oldState)
	b = binary.BigEndian.AppendUint16(b, newState)
	wr.body = b
	return wr.writeRecord(t, TypeBGP4MP, SubStateChange, b)
}

// appendPrefix appends one length-prefixed NLRI-style prefix.
func appendPrefix(dst []byte, p astypes.Prefix) []byte {
	dst = append(dst, p.Len)
	octets := (int(p.Len) + 7) / 8
	for i := 0; i < octets; i++ {
		dst = append(dst, byte(p.Addr>>uint(24-8*i)))
	}
	return dst
}

// appendAttr appends one attribute (header + value), choosing the
// extended-length encoding when the value exceeds 255 bytes.
func appendAttr(dst []byte, flags, code uint8, val []byte) ([]byte, error) {
	if len(val) > 0xffff {
		return nil, fmt.Errorf("attribute %d value %d bytes", code, len(val))
	}
	flags &^= afExtLen
	if len(val) > 0xff {
		flags |= afExtLen
		dst = append(dst, flags, code)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, flags, code, uint8(len(val)))
	}
	return append(dst, val...), nil
}

// appendASPath4 appends a 4-byte-wide AS_PATH attribute for path.
func appendASPath4(dst []byte, path astypes.ASPath) ([]byte, error) {
	var val []byte
	for _, seg := range path.Segments {
		if len(seg.ASNs) > 255 {
			return nil, fmt.Errorf("AS_PATH segment with %d ASNs exceeds 255", len(seg.ASNs))
		}
		val = append(val, uint8(seg.Type), uint8(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			val = binary.BigEndian.AppendUint32(val, uint32(asn))
		}
	}
	return appendAttr(dst, 0x40, aASPath, val)
}

// appendRIBAttrs appends one RIB entry's attribute block.
func appendRIBAttrs(dst []byte, e *RIBEntry) ([]byte, error) {
	var err error
	if dst, err = appendAttr(dst, 0x40, aOrigin, []byte{uint8(e.Origin)}); err != nil {
		return nil, err
	}
	if dst, err = appendASPath4(dst, e.Path); err != nil {
		return nil, err
	}
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], e.NextHop)
	if dst, err = appendAttr(dst, 0x40, aNextHop, u32[:]); err != nil {
		return nil, err
	}
	if e.HasLocalPref {
		binary.BigEndian.PutUint32(u32[:], e.LocalPref)
		if dst, err = appendAttr(dst, 0x40, aLocalPref, u32[:]); err != nil {
			return nil, err
		}
	}
	if len(e.Communities) > 0 {
		var val []byte
		for _, c := range e.Communities {
			val = binary.BigEndian.AppendUint32(val, uint32(c))
		}
		if dst, err = appendAttr(dst, 0xc0, aCommunity, val); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// appendUpdateAS4 appends a full BGP UPDATE message (marker, header,
// body) with a 4-byte-wide AS_PATH — the embedded-message format of
// MESSAGE_AS4 records, which the 2-byte wire codec cannot produce.
func appendUpdateAS4(dst []byte, u *wire.Update) ([]byte, error) {
	start := len(dst)
	for i := 0; i < 16; i++ {
		dst = append(dst, 0xff)
	}
	dst = append(dst, 0, 0, uint8(wire.MsgUpdate))

	wOff := len(dst)
	dst = append(dst, 0, 0) // withdrawn routes length
	for _, p := range u.Withdrawn {
		dst = appendPrefix(dst, p)
	}
	binary.BigEndian.PutUint16(dst[wOff:], uint16(len(dst)-wOff-2))

	aOff := len(dst)
	dst = append(dst, 0, 0) // total path attribute length
	var err error
	if u.Attrs.HasOrigin || len(u.NLRI) > 0 {
		if dst, err = appendAttr(dst, 0x40, aOrigin, []byte{uint8(u.Attrs.Origin)}); err != nil {
			return nil, err
		}
	}
	if len(u.Attrs.ASPath.Segments) > 0 || len(u.NLRI) > 0 {
		if dst, err = appendASPath4(dst, u.Attrs.ASPath); err != nil {
			return nil, err
		}
	}
	var u32 [4]byte
	if u.Attrs.HasNextHop || len(u.NLRI) > 0 {
		binary.BigEndian.PutUint32(u32[:], u.Attrs.NextHop)
		if dst, err = appendAttr(dst, 0x40, aNextHop, u32[:]); err != nil {
			return nil, err
		}
	}
	if u.Attrs.HasLocalPref {
		binary.BigEndian.PutUint32(u32[:], u.Attrs.LocalPref)
		if dst, err = appendAttr(dst, 0x40, aLocalPref, u32[:]); err != nil {
			return nil, err
		}
	}
	if len(u.Attrs.Communities) > 0 {
		var val []byte
		for _, c := range u.Attrs.Communities {
			val = binary.BigEndian.AppendUint32(val, uint32(c))
		}
		if dst, err = appendAttr(dst, 0xc0, aCommunity, val); err != nil {
			return nil, err
		}
	}
	aLen := len(dst) - aOff - 2
	if aLen > 0xffff {
		return nil, fmt.Errorf("attribute section %d bytes", aLen)
	}
	binary.BigEndian.PutUint16(dst[aOff:], uint16(aLen))

	for _, p := range u.NLRI {
		dst = appendPrefix(dst, p)
	}
	if len(dst)-start > wire.MaxMessageLen {
		return nil, fmt.Errorf("UPDATE %d bytes exceeds max %d", len(dst)-start, wire.MaxMessageLen)
	}
	binary.BigEndian.PutUint16(dst[start+16:start+18], uint16(len(dst)-start))
	return dst, nil
}
