package mrt

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/astypes"
)

// timeZero is the fixed timestamp fuzzed records carry.
var timeZero = time.Unix(0, 0).UTC()

// FuzzMRTDecode feeds arbitrary bytes through the reader. Invariants:
// no panic, terminal errors are sticky, every successful record
// advances both the span and the stream offset, and stats never go
// backwards. Seeds are the golden fixtures plus their truncations and
// a few corruptions of each.
func FuzzMRTDecode(f *testing.F) {
	seeds := [][]byte{
		mustHex(f, hexPeerIndex),
		mustHex(f, hexRIB),
		mustHex(f, hexUpdateAS2),
		mustHex(f, hexUpdateAS4),
		mustHex(f, hexStateChange),
		mustHex(f, hexUpdateET),
		mustHex(f, hexSkipped),
		mustHex(f, hexTruncHeader),
		mustHex(f, hexTruncBody),
		goldenStream(f),
	}
	for _, s := range seeds {
		f.Add(s)
		if len(s) > headerLen {
			// Flip a body byte and truncate mid-body.
			c := append([]byte(nil), s...)
			c[headerLen] ^= 0xff
			f.Add(c)
			f.Add(s[:headerLen+1])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // corrupt gzip/bzip2 framing detected at construction
		}
		var (
			lastSpan   uint64
			lastOffset int64 = -1
			prev       Stats
		)
		for i := 0; i <= len(data)+1; i++ {
			rec, err := rd.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return
				}
				if IsTerminal(err) {
					// Sticky: one more call must return the identical error.
					if _, err2 := rd.Next(); err2 != err {
						t.Fatalf("terminal error not sticky: %v then %v", err, err2)
					}
					return
				}
				continue // recoverable body error; stream goes on
			}
			if rec.Span <= lastSpan {
				t.Fatalf("span did not advance: %d after %d", rec.Span, lastSpan)
			}
			if rec.Offset <= lastOffset {
				t.Fatalf("offset did not advance: %d after %d", rec.Offset, lastOffset)
			}
			lastSpan, lastOffset = rec.Span, rec.Offset
			s := rd.Stats()
			if s.Records < prev.Records || s.RIBEntries < prev.RIBEntries || s.Updates < prev.Updates {
				t.Fatalf("stats went backwards: %+v after %+v", s, prev)
			}
			prev = s
		}
		t.Fatal("reader did not terminate after len(data)+1 records")
	})
}

// FuzzWriterRoundTrip is the encode side: any RIB table the Writer
// accepts must decode back. The fuzzer mutates the raw knobs.
func FuzzWriterRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint32(0x0A000000), uint8(24), uint16(65001), uint32(0xC0000201))
	f.Add(uint32(9), uint32(0), uint8(0), uint16(1), uint32(1))
	f.Fuzz(func(t *testing.T, seq, addr uint32, plen uint8, as uint16, nexthop uint32) {
		if plen > 32 || as == 0 {
			return
		}
		if plen < 32 {
			addr &^= 1<<(32-plen) - 1
		}
		prefix, err := astypes.NewPrefix(addr, plen)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		peers := []Peer{{BGPID: 1, IP: 2, AS: uint32(as)}}
		if err := w.WritePeerIndex(timeZero, 1, "fuzz", peers); err != nil {
			t.Fatal(err)
		}
		want := []RIBEntry{{
			PeerAS:  peers[0].ASN(),
			Origin:  0,
			Path:    astypes.NewSeqPath(peers[0].ASN()),
			NextHop: nexthop,
		}}
		if err := w.WriteRIB(timeZero, seq, prefix, want); err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		rec, err := rd.Next()
		if err != nil {
			t.Fatalf("decoding written RIB: %v", err)
		}
		if rec.Seq != seq || rec.Prefix != prefix || len(rec.Entries) != 1 ||
			rec.Entries[0].PeerAS != want[0].PeerAS || rec.Entries[0].NextHop != nexthop {
			t.Fatalf("round trip mismatch: %+v", rec)
		}
	})
}
