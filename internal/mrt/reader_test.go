package mrt

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/iotest"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------
// Partial-read and malformed-framing edge cases. The contract: framing
// errors (truncated header/body, absurd length) are terminal and
// sticky; body errors consume the record and let the stream continue;
// nothing ever panics or spins.
// ---------------------------------------------------------------------

func TestTruncatedHeader(t *testing.T) {
	rd, err := NewReader(bytes.NewReader(mustHex(t, hexTruncHeader)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if !errors.Is(err, ErrTruncatedHeader) {
		t.Fatalf("err = %v, want ErrTruncatedHeader", err)
	}
	var re *RecordError
	if !errors.As(err, &re) {
		t.Fatalf("err %T is not a *RecordError", err)
	}
	if re.Offset != 0 {
		t.Errorf("offset %d, want 0", re.Offset)
	}
	if !IsTerminal(err) {
		t.Error("truncated header should be terminal")
	}
	// Sticky: the same error again, no spinning or re-reads.
	if _, err2 := rd.Next(); err2 != err {
		t.Errorf("second Next returned %v, want the identical sticky error", err2)
	}
}

func TestTruncatedHeaderMidStream(t *testing.T) {
	// A full record followed by a partial header: the offset in the
	// error points at the failed record, not the stream start.
	data := append(mustHex(t, hexStateChange), mustHex(t, hexTruncHeader)...)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	var re *RecordError
	if !errors.As(err, &re) || !errors.Is(err, ErrTruncatedHeader) {
		t.Fatalf("err = %v", err)
	}
	if want := int64(len(mustHex(t, hexStateChange))); re.Offset != want {
		t.Errorf("offset %d, want %d", re.Offset, want)
	}
}

func TestTruncatedBody(t *testing.T) {
	rd, err := NewReader(bytes.NewReader(mustHex(t, hexTruncBody)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if !errors.Is(err, ErrTruncatedBody) || !IsTerminal(err) {
		t.Fatalf("err = %v, want terminal ErrTruncatedBody", err)
	}
	var re *RecordError
	if !errors.As(err, &re) {
		t.Fatal("not a *RecordError")
	}
	if re.Type != TypeTableDumpV2 || re.Subtype != SubRIBIPv4Unicast {
		t.Errorf("error type/subtype %d/%d", re.Type, re.Subtype)
	}
	if _, err2 := rd.Next(); err2 != err {
		t.Error("truncated body is not sticky")
	}
}

func TestBadLength(t *testing.T) {
	// Header declaring a body larger than MaxRecordLen.
	data := mustHex(t, `00000000 000D 0002 FFFFFFFF`)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if !errors.Is(err, ErrBadLength) || !IsTerminal(err) {
		t.Fatalf("err = %v, want terminal ErrBadLength", err)
	}
}

func TestEmptyStream(t *testing.T) {
	rd, err := NewReader(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatal("EOF is not sticky")
	}
}

func TestZeroLengthRIBEntry(t *testing.T) {
	// Peer index, then a RIB record whose entry has attribute length 0,
	// then a healthy state change. The middle record fails with a
	// recoverable ErrBadRecord and the reader keeps going.
	var data []byte
	data = append(data, mustHex(t, hexPeerIndex)...)
	data = append(data, mustHex(t, `00000000 000D 0002 00000010
		00000001 08 0A 0001
		0000 00000000 0000`)...)
	data = append(data, mustHex(t, hexStateChange)...)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
	if IsTerminal(err) {
		t.Error("zero-length RIB entry must be recoverable")
	}
	var re *RecordError
	if !errors.As(err, &re) {
		t.Fatal("not a *RecordError")
	}
	if want := int64(len(mustHex(t, hexPeerIndex))); re.Offset != want {
		t.Errorf("offset %d, want %d", re.Offset, want)
	}
	rec, err := rd.Next()
	if err != nil || rec.Kind != KindStateChange {
		t.Fatalf("stream did not continue past bad record: %v %v", rec, err)
	}
	if rec.Span != 3 {
		t.Errorf("span %d, want 3 (bad record still consumed a span)", rec.Span)
	}
}

func TestRIBWithoutPeerIndex(t *testing.T) {
	rd, err := NewReader(bytes.NewReader(mustHex(t, hexRIB)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if !errors.Is(err, ErrNoPeerIndex) || IsTerminal(err) {
		t.Fatalf("err = %v, want recoverable ErrNoPeerIndex", err)
	}
}

func TestRIBBadPeerIndex(t *testing.T) {
	// Entry referencing peer 7 when the table has two peers.
	var data []byte
	data = append(data, mustHex(t, hexPeerIndex)...)
	data = append(data, mustHex(t, `00000000 000D 0002 00000018
		00000001 08 0A 0001
		0007 00000000 0008
		40 01 01 00
		40 03 04 C0000201`)...)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	if !errors.Is(err, ErrBadPeerIndex) || IsTerminal(err) {
		t.Fatalf("err = %v, want recoverable ErrBadPeerIndex", err)
	}
}

func TestOneByteReads(t *testing.T) {
	// Every record straddles the read-buffer boundary when the source
	// yields one byte per Read; decoding must be identical.
	data := goldenStream(t)
	rd, err := NewReader(iotest.OneByteReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 7 {
		t.Fatalf("decoded %d records, want 7", n)
	}
}

// ---------------------------------------------------------------------
// Compression framing detection.
// ---------------------------------------------------------------------

func TestGzipStream(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(goldenStream(t)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := readAll(t, buf.Bytes())
	if len(recs) != 7 {
		t.Fatalf("decoded %d records through gzip, want 7", len(recs))
	}
}

// hexGoldenBz2 is the golden stream compressed with bzip2 (generated
// with Python's bz2 module; the Go stdlib only decompresses).
const hexGoldenBz2 = `
	425A68393141592653593067906A000080FDBFFFD6646044408808C880072001
	800010200200014010000100308002B000CC50C529B427A6A66A1A190C807A46
	6A18686434C9A018869A68D0D182449328D1A353D131A0650604C8F5801AAD69
	624284F9D140C517A050AECAA14D34390027F1104E3355E5C92775C1844A7F14
	A3A8C585A9D01A6D05D08C41924518317239C890508868D4320F179255835521
	85241116286C8750C5A70B570993F69816B1AB147668F5C676E553C0C4601A17
	30C7C8194328935E99B6003911B0E64CD20449BB652D768DEC57A092FF177245
	3850903067906A`

func TestBzip2Stream(t *testing.T) {
	recs, _ := readAll(t, mustHex(t, hexGoldenBz2))
	if len(recs) != 7 {
		t.Fatalf("decoded %d records through bzip2, want 7", len(recs))
	}
	if recs[0].Kind != KindPeerIndex || recs[1].Kind != KindRIB {
		t.Errorf("kinds %v %v", recs[0].Kind, recs[1].Kind)
	}
}

// ---------------------------------------------------------------------
// Writer → Reader round-trip property test: seeded random tables and
// update traces survive an encode/decode cycle bit-for-bit.
// ---------------------------------------------------------------------

func randPath(rng *rand.Rand) astypes.ASPath {
	var p astypes.ASPath
	for s, n := 0, 1+rng.Intn(2); s < n; s++ {
		typ := astypes.SegSequence
		if s > 0 && rng.Intn(3) == 0 {
			typ = astypes.SegSet
		}
		asns := make([]astypes.ASN, 1+rng.Intn(4))
		for i := range asns {
			asns[i] = astypes.ASN(1 + rng.Intn(65534))
		}
		p.Segments = append(p.Segments, astypes.Segment{Type: typ, ASNs: asns})
	}
	return p
}

func randComms(rng *rand.Rand) []astypes.Community {
	if rng.Intn(2) == 0 {
		return nil
	}
	out := make([]astypes.Community, 1+rng.Intn(3))
	for i := range out {
		out[i] = astypes.Community(rng.Uint32())
	}
	return out
}

func randPrefix(rng *rand.Rand) astypes.Prefix {
	length := uint8(8 + rng.Intn(25)) // 8..32
	addr := rng.Uint32()
	if length < 32 {
		addr &^= 1<<(32-length) - 1
	}
	return astypes.MustPrefix(addr, length)
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1997))
	t0 := time.Unix(1000000000, 0).UTC()
	for iter := 0; iter < 40; iter++ {
		peers := make([]Peer, 1+rng.Intn(4))
		for i := range peers {
			peers[i] = Peer{
				BGPID: rng.Uint32(),
				IP:    rng.Uint32(),
				AS:    uint32(1 + rng.Intn(65534)),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WritePeerIndex(t0, 0xC0000001, "rt", peers); err != nil {
			t.Fatal(err)
		}

		type ribRec struct {
			seq     uint32
			prefix  astypes.Prefix
			entries []RIBEntry
		}
		var wantRIB []ribRec
		for r, n := 0, 1+rng.Intn(8); r < n; r++ {
			rec := ribRec{seq: uint32(r), prefix: randPrefix(rng)}
			for e, m := 0, 1+rng.Intn(3); e < m; e++ {
				idx := uint16(rng.Intn(len(peers)))
				ent := RIBEntry{
					PeerIndex:  idx,
					PeerAS:     peers[idx].ASN(),
					Originated: rng.Uint32(),
					Origin:     wire.OriginCode(rng.Intn(3)),
					Path:       randPath(rng),
					NextHop:    rng.Uint32(),
				}
				if rng.Intn(2) == 0 {
					ent.HasLocalPref, ent.LocalPref = true, rng.Uint32()
				}
				ent.Communities = randComms(rng)
				rec.entries = append(rec.entries, ent)
			}
			if err := w.WriteRIB(t0, rec.seq, rec.prefix, rec.entries); err != nil {
				t.Fatal(err)
			}
			wantRIB = append(wantRIB, rec)
		}

		var wantUpd []*wire.Update
		for r, n := 0, 1+rng.Intn(4); r < n; r++ {
			u := &wire.Update{}
			for i, m := 0, rng.Intn(3); i < m; i++ {
				u.Withdrawn = append(u.Withdrawn, randPrefix(rng))
			}
			for i, m := 0, 1+rng.Intn(3); i < m; i++ {
				u.NLRI = append(u.NLRI, randPrefix(rng))
			}
			u.Attrs.HasOrigin = true
			u.Attrs.Origin = wire.OriginCode(rng.Intn(3))
			u.Attrs.ASPath = randPath(rng)
			u.Attrs.HasNextHop = true
			u.Attrs.NextHop = rng.Uint32()
			if rng.Intn(2) == 0 {
				u.Attrs.HasLocalPref, u.Attrs.LocalPref = true, rng.Uint32()
			}
			u.Attrs.Communities = randComms(rng)
			peerAS := astypes.ASN(1 + rng.Intn(65534))
			var err error
			if rng.Intn(2) == 0 {
				err = w.WriteUpdate(t0, peerAS, 6447, rng.Uint32(), rng.Uint32(), u)
			} else {
				err = w.WriteUpdateAS4(t0, uint32(peerAS), 6447, rng.Uint32(), rng.Uint32(), u)
			}
			if err != nil {
				t.Fatal(err)
			}
			wantUpd = append(wantUpd, u)
		}

		recs, _ := readAll(t, buf.Bytes())
		if len(recs) != 1+len(wantRIB)+len(wantUpd) {
			t.Fatalf("iter %d: decoded %d records, want %d", iter, len(recs), 1+len(wantRIB)+len(wantUpd))
		}
		if !reflect.DeepEqual(recs[0].Peers, peers) {
			t.Fatalf("iter %d: peers\n got %+v\nwant %+v", iter, recs[0].Peers, peers)
		}
		for i, want := range wantRIB {
			got := recs[1+i]
			if got.Seq != want.seq || got.Prefix != want.prefix {
				t.Fatalf("iter %d rib %d: seq/prefix %d %s", iter, i, got.Seq, got.Prefix)
			}
			if !reflect.DeepEqual(got.Entries, want.entries) {
				t.Fatalf("iter %d rib %d entries:\n got %+v\nwant %+v", iter, i, got.Entries, want.entries)
			}
		}
		for i, want := range wantUpd {
			got := recs[1+len(wantRIB)+i].Update
			if got == nil {
				t.Fatalf("iter %d update %d: no update", iter, i)
			}
			if !updateEqual(got, want) {
				t.Fatalf("iter %d update %d:\n got %+v\nwant %+v", iter, i, got, want)
			}
		}
	}
}

// updateEqual compares updates treating nil and empty prefix slices as
// the same (the decoder reuses scratch, so zero-length comes back
// non-nil).
func updateEqual(a, b *wire.Update) bool {
	return prefixesEqual(a.Withdrawn, b.Withdrawn) &&
		prefixesEqual(a.NLRI, b.NLRI) &&
		reflect.DeepEqual(a.Attrs, b.Attrs)
}

func prefixesEqual(a, b []astypes.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Synthetic full-table load: 10k prefixes through the Writer, read
// back with exact accounting.
// ---------------------------------------------------------------------

// writeSyntheticTable emits a peer index plus n RIB records and returns
// the encoded archive.
func writeSyntheticTable(tb testing.TB, n int) []byte {
	tb.Helper()
	t0 := time.Unix(1000000000, 0).UTC()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	peers := []Peer{
		{BGPID: 0x01010101, IP: 0xC0000201, AS: 65001},
		{BGPID: 0x02020202, IP: 0xC0000202, AS: 65002},
	}
	if err := w.WritePeerIndex(t0, 0x0A000001, "synthetic", peers); err != nil {
		tb.Fatal(err)
	}
	entries := make([]RIBEntry, 2)
	for i := 0; i < n; i++ {
		// March through /24s: 10.0.0.0/24, 10.0.1.0/24, ...
		prefix := astypes.MustPrefix(0x0A000000+uint32(i)<<8, 24)
		for e := range entries {
			entries[e] = RIBEntry{
				PeerIndex:  uint16(e),
				PeerAS:     peers[e].ASN(),
				Originated: uint32(i),
				Origin:     wire.OriginIGP,
				Path: astypes.ASPath{Segments: []astypes.Segment{{
					Type: astypes.SegSequence,
					ASNs: []astypes.ASN{peers[e].ASN(), astypes.ASN(64000 + i%100)},
				}}},
				NextHop: peers[e].IP,
			}
		}
		if err := w.WriteRIB(t0, uint32(i), prefix, entries); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSynthetic10kTable(t *testing.T) {
	const n = 10000
	data := writeSyntheticTable(t, n)
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var prefixes, entries int
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Kind == KindRIB {
			prefixes++
			entries += len(rec.Entries)
		}
	}
	if prefixes != n || entries != 2*n {
		t.Fatalf("prefixes %d entries %d, want %d, %d", prefixes, entries, n, 2*n)
	}
	s := rd.Stats()
	if s.RIBPrefixes != n || s.RIBEntries != 2*n || s.Records != n+1 {
		t.Errorf("stats %+v", s)
	}
}

// ---------------------------------------------------------------------
// Steady-state allocation guard: after warm-up, Next performs zero
// heap allocations per record.
// ---------------------------------------------------------------------

// loopReader replays data forever.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

func TestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	// One peer index, then an endless loop of RIB records and updates:
	// the steady-state shape of a full-table load.
	t0 := time.Unix(1000000000, 0).UTC()
	var head, loop bytes.Buffer
	w := NewWriter(&head)
	peers := []Peer{{BGPID: 1, IP: 0xC0000201, AS: 65001}}
	if err := w.WritePeerIndex(t0, 1, "alloc", peers); err != nil {
		t.Fatal(err)
	}
	w = NewWriter(&loop)
	ent := []RIBEntry{{
		PeerAS: 65001, Origin: wire.OriginIGP,
		Path: astypes.ASPath{Segments: []astypes.Segment{{
			Type: astypes.SegSequence, ASNs: []astypes.ASN{65001, 64512},
		}}},
		NextHop:     0xC0000201,
		Communities: []astypes.Community{0xFDE90001},
	}}
	if err := w.WriteRIB(t0, 1, astypes.MustPrefix(0x0A000000, 24), ent); err != nil {
		t.Fatal(err)
	}
	u := &wire.Update{NLRI: []astypes.Prefix{astypes.MustPrefix(0x0A010000, 24)}}
	u.Attrs.HasOrigin, u.Attrs.HasNextHop = true, true
	u.Attrs.NextHop = 0xC0000201
	u.Attrs.ASPath = astypes.NewSeqPath(65001, 64512)
	if err := w.WriteUpdate(t0, 65001, 6447, 0xC0000201, 0xC0000202, u); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(io.MultiReader(bytes.NewReader(head.Bytes()), &loopReader{data: loop.Bytes()}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ { // warm arenas and record buffer
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state Next allocates %.2f objects/record, want 0", avg)
	}
}
