package mrt

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// Golden fixtures: byte-exact hex records with their expected decoded
// structures. The hex is hand-assembled from RFC 6396 field layouts so
// the reader is checked against the spec, not against the Writer.

// mustHex decodes a whitespace-tolerant hex string.
func mustHex(t testing.TB, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(strings.Join(strings.Fields(s), ""))
	if err != nil {
		t.Fatalf("bad fixture hex: %v", err)
	}
	return b
}

// Fixture hex. Common header: timestamp(4) type(2) subtype(2) length(4).
const (
	// PEER_INDEX_TABLE: collector 10.0.0.1, view "view", two peers —
	// peer 0 AS2 65001 at 192.0.2.1, peer 1 AS4 196615 at 192.0.2.2.
	hexPeerIndex = `3B9ACA00 000D 0001 00000024
		0A000001 0004 76696577 0002
		00 01010101 C0000201 FDE9
		02 02020202 C0000202 00030007`

	// RIB_IPV4_UNICAST: seq 5, 10.0.0.0/8, one entry from peer 1 with
	// ORIGIN IGP, AS_PATH (4-byte) 196615 65001, NEXT_HOP 192.0.2.1.
	hexRIB = `3B9ACA01 000D 0002 00000028
		00000005 08 0A 0001
		0001 00000064 0018
		40 01 01 00
		40 02 0A 02 02 00030007 0000FDE9
		40 03 04 C0000201`

	// BGP4MP MESSAGE (2-byte AS): AS 65001 -> AS 6502 announcing
	// 192.0.2.0/24, path 65001 65002, ORIGIN IGP, NEXT_HOP 10.0.0.1.
	hexUpdateAS2 = `3B9ACA02 0010 0001 0000003F
		FDE9 1966 0000 0001 C0000201 C0000202
		FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF 002F 02
		0000 0014
		40 01 01 00
		40 02 06 02 02 FDE9 FDEA
		40 03 04 0A000001
		18 C00002`

	// BGP4MP MESSAGE_AS4: peer AS 196615 (out of 16-bit range), path
	// 196615 65002 with 4-byte encoding; both narrow to AS_TRANS.
	hexUpdateAS4 = `3B9ACA03 0010 0004 00000047
		00030007 00001966 0000 0001 C0000201 C0000202
		FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF 0033 02
		0000 0018
		40 01 01 00
		40 02 0A 02 02 00030007 0000FDEA
		40 03 04 0A000001
		18 C00002`

	// BGP4MP STATE_CHANGE: peer 65001, OpenConfirm(5) -> Established(6).
	hexStateChange = `3B9ACA04 0010 0000 00000014
		FDE9 1966 0000 0001 C0000201 C0000202 0005 0006`

	// BGP4MP_ET MESSAGE: the AS2 update with a 500000µs extended
	// timestamp prepended to the body.
	hexUpdateET = `3B9ACA02 0011 0001 00000043
		0007A120
		FDE9 1966 0000 0001 C0000201 C0000202
		FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF 002F 02
		0000 0014
		40 01 01 00
		40 02 06 02 02 FDE9 FDEA
		40 03 04 0A000001
		18 C00002`

	// A record type the reader skips (classic TABLE_DUMP, type 12).
	hexSkipped = `3B9ACA05 000C 0001 00000004 DEADBEEF`

	// Truncated header: stream ends 6 bytes into the 12-byte header.
	hexTruncHeader = `3B9ACA00 000D`

	// Truncated body: header declares 20 bytes, stream carries 8.
	hexTruncBody = `3B9ACA00 000D 0002 00000014 0000000508`
)

func readAll(t *testing.T, data []byte) ([]Record, *Reader) {
	t.Helper()
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var out []Record
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			return out, rd
		}
		if err != nil {
			t.Fatalf("record %d: %v", len(out)+1, err)
		}
		// Deep-copy the scratch-aliasing record so the table survives
		// subsequent Next calls.
		out = append(out, copyRecord(rec))
	}
}

func copyRecord(r *Record) Record {
	c := *r
	c.Entries = append([]RIBEntry(nil), r.Entries...)
	for i := range c.Entries {
		c.Entries[i].Path = c.Entries[i].Path.Clone()
		c.Entries[i].Communities = append([]astypes.Community(nil), c.Entries[i].Communities...)
	}
	if r.Update != nil {
		u := &wire.Update{
			Withdrawn: append([]astypes.Prefix(nil), r.Update.Withdrawn...),
			Attrs:     r.Update.Attrs,
			NLRI:      append([]astypes.Prefix(nil), r.Update.NLRI...),
		}
		u.Attrs.ASPath = r.Update.Attrs.ASPath.Clone()
		u.Attrs.Communities = append([]astypes.Community(nil), r.Update.Attrs.Communities...)
		c.Update = u
	}
	return c
}

func TestGoldenPeerIndex(t *testing.T) {
	recs, rd := readAll(t, mustHex(t, hexPeerIndex))
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindPeerIndex || r.Type != TypeTableDumpV2 || r.Subtype != SubPeerIndexTable {
		t.Fatalf("kind/type/subtype = %v/%d/%d", r.Kind, r.Type, r.Subtype)
	}
	if r.Span != 1 || r.Offset != 0 {
		t.Errorf("span %d offset %d, want 1, 0", r.Span, r.Offset)
	}
	if r.Time != time.Unix(1000000000, 0).UTC() {
		t.Errorf("time %v", r.Time)
	}
	if r.CollectorID != 0x0A000001 || r.ViewName != "view" {
		t.Errorf("collector %x view %q", r.CollectorID, r.ViewName)
	}
	wantPeers := []Peer{
		{BGPID: 0x01010101, IP: 0xC0000201, AS: 65001},
		{BGPID: 0x02020202, IP: 0xC0000202, AS: 196615},
	}
	if !reflect.DeepEqual(r.Peers, wantPeers) {
		t.Errorf("peers %+v\nwant  %+v", r.Peers, wantPeers)
	}
	if got := wantPeers[1].ASN(); got != ASTrans {
		t.Errorf("out-of-range peer ASN() = %d, want AS_TRANS", got)
	}
	if s := rd.Stats(); s.Records != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestGoldenRIB(t *testing.T) {
	data := append(mustHex(t, hexPeerIndex), mustHex(t, hexRIB)...)
	recs, rd := readAll(t, data)
	if len(recs) != 2 {
		t.Fatalf("decoded %d records, want 2", len(recs))
	}
	r := recs[1]
	if r.Kind != KindRIB || r.Span != 2 || r.Offset != 48 {
		t.Fatalf("kind %v span %d offset %d (want rib, 2, 48)", r.Kind, r.Span, r.Offset)
	}
	if r.Seq != 5 || r.Prefix != astypes.MustPrefix(0x0A000000, 8) {
		t.Errorf("seq %d prefix %s", r.Seq, r.Prefix)
	}
	want := RIBEntry{
		PeerIndex:  1,
		PeerAS:     ASTrans,
		Originated: 100,
		Origin:     wire.OriginIGP,
		Path: astypes.ASPath{Segments: []astypes.Segment{
			{Type: astypes.SegSequence, ASNs: []astypes.ASN{ASTrans, 65001}},
		}},
		NextHop: 0xC0000201,
	}
	if len(r.Entries) != 1 || !reflect.DeepEqual(r.Entries[0], want) {
		t.Errorf("entries %+v\nwant   %+v", r.Entries, want)
	}
	s := rd.Stats()
	if s.RIBPrefixes != 1 || s.RIBEntries != 1 || s.AS4Substituted != 1 {
		t.Errorf("stats %+v (want 1 RIB prefix, 1 entry, 1 AS4 substitution)", s)
	}
}

func TestGoldenUpdateAS2(t *testing.T) {
	recs, rd := readAll(t, mustHex(t, hexUpdateAS2))
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindMessage || r.MsgType != wire.MsgUpdate {
		t.Fatalf("kind %v msgtype %v", r.Kind, r.MsgType)
	}
	if r.PeerAS != 65001 || r.LocalAS != 6502 {
		t.Errorf("peer %d local %d", r.PeerAS, r.LocalAS)
	}
	u := r.Update
	if u == nil {
		t.Fatal("no update decoded")
	}
	if len(u.NLRI) != 1 || u.NLRI[0] != astypes.MustPrefix(0xC0000200, 24) {
		t.Errorf("NLRI %v", u.NLRI)
	}
	wantPath := astypes.ASPath{Segments: []astypes.Segment{
		{Type: astypes.SegSequence, ASNs: []astypes.ASN{65001, 65002}},
	}}
	if !reflect.DeepEqual(u.Attrs.ASPath, wantPath) {
		t.Errorf("path %+v", u.Attrs.ASPath)
	}
	if !u.Attrs.HasOrigin || u.Attrs.Origin != wire.OriginIGP ||
		!u.Attrs.HasNextHop || u.Attrs.NextHop != 0x0A000001 {
		t.Errorf("attrs %+v", u.Attrs)
	}
	if s := rd.Stats(); s.Messages != 1 || s.Updates != 1 || s.AS4Substituted != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestGoldenUpdateAS4(t *testing.T) {
	recs, rd := readAll(t, mustHex(t, hexUpdateAS4))
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindMessage || r.Subtype != SubMessageAS4 {
		t.Fatalf("kind %v subtype %d", r.Kind, r.Subtype)
	}
	// Peer AS 196615 exceeds the 16-bit space: substituted.
	if r.PeerAS != ASTrans || r.LocalAS != 6502 {
		t.Errorf("peer %d local %d (want AS_TRANS, 6502)", r.PeerAS, r.LocalAS)
	}
	wantPath := astypes.ASPath{Segments: []astypes.Segment{
		{Type: astypes.SegSequence, ASNs: []astypes.ASN{ASTrans, 65002}},
	}}
	if !reflect.DeepEqual(r.Update.Attrs.ASPath, wantPath) {
		t.Errorf("path %+v", r.Update.Attrs.ASPath)
	}
	if s := rd.Stats(); s.AS4Substituted != 2 {
		t.Errorf("AS4Substituted = %d, want 2 (peer header + path)", s.AS4Substituted)
	}
}

func TestGoldenStateChange(t *testing.T) {
	recs, _ := readAll(t, mustHex(t, hexStateChange))
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindStateChange || r.PeerAS != 65001 || r.OldState != 5 || r.NewState != 6 {
		t.Errorf("record %+v", r)
	}
}

func TestGoldenUpdateET(t *testing.T) {
	recs, _ := readAll(t, mustHex(t, hexUpdateET))
	if len(recs) != 1 {
		t.Fatalf("decoded %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Type != TypeBGP4MPET || r.Kind != KindMessage {
		t.Fatalf("type %d kind %v", r.Type, r.Kind)
	}
	want := time.Unix(1000000002, 500000*1000).UTC()
	if r.Time != want {
		t.Errorf("time %v, want %v (microsecond extension)", r.Time, want)
	}
	if len(r.Update.NLRI) != 1 {
		t.Errorf("update %+v", r.Update)
	}
}

func TestGoldenSkipped(t *testing.T) {
	recs, rd := readAll(t, mustHex(t, hexSkipped))
	if len(recs) != 1 || recs[0].Kind != KindSkipped {
		t.Fatalf("records %+v", recs)
	}
	if s := rd.Stats(); s.Skipped != 1 || s.Records != 1 {
		t.Errorf("stats %+v", s)
	}
}

// goldenStream concatenates every well-formed fixture; several tests
// and the fuzz corpus reuse it.
func goldenStream(t testing.TB) []byte {
	var b bytes.Buffer
	for _, h := range []string{
		hexPeerIndex, hexRIB, hexUpdateAS2, hexUpdateAS4, hexStateChange, hexUpdateET, hexSkipped,
	} {
		b.Write(mustHex(t, h))
	}
	return b.Bytes()
}

func TestGoldenStreamSpansAndOffsets(t *testing.T) {
	data := goldenStream(t)
	recs, _ := readAll(t, data)
	if len(recs) != 7 {
		t.Fatalf("decoded %d records, want 7", len(recs))
	}
	wantOffset := int64(0)
	for i, r := range recs {
		if r.Span != uint64(i+1) {
			t.Errorf("record %d span %d", i, r.Span)
		}
		if r.Offset != wantOffset {
			t.Errorf("record %d offset %d, want %d", i, r.Offset, wantOffset)
		}
		// Reconstruct expected offset from the declared length field.
		wantOffset += headerLen + int64(uint32(data[r.Offset+8])<<24|uint32(data[r.Offset+9])<<16|
			uint32(data[r.Offset+10])<<8|uint32(data[r.Offset+11]))
	}
}
