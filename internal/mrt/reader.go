package mrt

import (
	"bufio"
	"compress/bzip2"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// Reader decodes MRT records from a stream, transparently unwrapping
// gzip and bzip2 framing. It follows the wire-codec scratch idiom: one
// record buffer plus flat arenas (AS numbers, segments, communities,
// RIB entries) owned by the Reader and reused on every Next, so decoding
// an arbitrarily long archive performs zero steady-state allocations.
// The returned Record aliases that scratch and is valid only until the
// next Next call. Not safe for concurrent use.
type Reader struct {
	r      io.Reader
	off    int64 // offset of the current record's header
	pos    int64 // offset of the next record's header
	span   uint64
	sticky error // terminal stream error (framing lost); returned forever

	hdr [headerLen]byte
	buf []byte // record body scratch

	// Current peer table (replaced by each PEER_INDEX_TABLE).
	havePeers   bool
	peers       []Peer
	viewName    string
	collectorID uint32

	rec Record
	upd wire.Update
	scr attrScratch

	// Flat decode arenas. During body parsing only indices into these
	// are recorded (segRange, entryMeta), so arena growth mid-record
	// cannot strand earlier slices; the final Record slices are carved
	// once the record is fully parsed and the arenas stop moving.
	asns    []astypes.ASN
	segMeta []segRange
	segs    []astypes.Segment
	comms   []astypes.Community
	entMeta []entryMeta
	entries []RIBEntry

	stats Stats
}

// segRange is one AS_PATH segment as an index range into the asns arena.
type segRange struct {
	typ    astypes.SegmentType
	lo, hi int32
}

// entryMeta is one RIB entry parsed down to arena indices.
type entryMeta struct {
	peerIndex  uint16
	originated uint32
	s          attrScratch
}

// attrScratch is the decoded attribute set of one RIB entry or UPDATE,
// with path segments and communities as arena index ranges.
type attrScratch struct {
	hasOrigin       bool
	origin          wire.OriginCode
	segLo, segHi    int32 // segMeta index range
	commLo, commHi  int32 // comms arena index range
	hasNextHop      bool
	nextHop         uint32
	hasLocalPref    bool
	localPref       uint32
	atomicAggregate bool
	hasAggregator   bool
	aggregatorAS    astypes.ASN
	aggregatorID    uint32
}

// Gzip and bzip2 magic bytes (the only compressions collector archives
// use in practice).
var (
	gzipMagic  = []byte{0x1f, 0x8b}
	bzip2Magic = []byte{'B', 'Z', 'h'}
)

// NewReader returns a Reader on r, sniffing the first bytes for gzip or
// bzip2 framing and unwrapping it when present. Offsets reported in
// errors are into the decompressed stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	magic, err := br.Peek(3)
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("mrt: sniff stream: %w", err)
	}
	var src io.Reader = br
	switch {
	case len(magic) >= 2 && magic[0] == gzipMagic[0] && magic[1] == gzipMagic[1]:
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("mrt: open gzip stream: %w", err)
		}
		src = gz
	case len(magic) >= 3 && magic[0] == bzip2Magic[0] && magic[1] == bzip2Magic[1] && magic[2] == bzip2Magic[2]:
		src = bzip2.NewReader(br)
	}
	return &Reader{r: src}, nil
}

// Stats returns ingest counters up to the most recent Next.
func (rd *Reader) Stats() Stats { return rd.stats }

// Peers returns the current peer table (from the most recent
// PEER_INDEX_TABLE); the slice is owned by the Reader.
func (rd *Reader) Peers() []Peer { return rd.peers }

// fail records a terminal stream error: the record framing is lost, so
// every subsequent Next returns the same error instead of resyncing on
// garbage.
func (rd *Reader) fail(typ, sub uint16, cause error) error {
	rd.sticky = &RecordError{
		Offset:  rd.off,
		Span:    rd.span + 1,
		Type:    typ,
		Subtype: sub,
		Err:     cause,
	}
	return rd.sticky
}

// wrap annotates a body-level decode error with the current record's
// position. Unlike fail, the framing is intact (the body was fully
// consumed), so the caller may keep calling Next to skip past the bad
// record.
func (rd *Reader) wrap(err error) error {
	return &RecordError{
		Offset:  rd.rec.Offset,
		Span:    rd.rec.Span,
		Type:    rd.rec.Type,
		Subtype: rd.rec.Subtype,
		Err:     err,
	}
}

// Next decodes and returns the next record. It returns io.EOF at a
// clean end of stream. A *RecordError wrapping ErrTruncatedHeader,
// ErrTruncatedBody or ErrBadLength is terminal (the framing is lost);
// a *RecordError wrapping the other sentinels reports a malformed body
// whose bytes were fully consumed, so Next may be called again to skip
// past it. The returned Record aliases the Reader's scratch and is
// valid only until the next call.
//
//repro:allocfree
func (rd *Reader) Next() (*Record, error) {
	if rd.sticky != nil {
		return nil, rd.sticky
	}
	rd.off = rd.pos
	if n, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			rd.sticky = io.EOF
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			err = ErrTruncatedHeader
		}
		return nil, rd.fail(0, 0, err)
	}
	ts := binary.BigEndian.Uint32(rd.hdr[0:4])
	typ := binary.BigEndian.Uint16(rd.hdr[4:6])
	sub := binary.BigEndian.Uint16(rd.hdr[6:8])
	length := binary.BigEndian.Uint32(rd.hdr[8:12])
	if length > MaxRecordLen {
		return nil, rd.fail(typ, sub, ErrBadLength)
	}
	if cap(rd.buf) < int(length) {
		//repro:vet ignore allocfree -- record buffer growth: amortized to zero once it reaches the archive's largest record
		rd.buf = make([]byte, length)
	}
	body := rd.buf[:length]
	if _, err := io.ReadFull(rd.r, body); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			err = ErrTruncatedBody
		}
		return nil, rd.fail(typ, sub, err)
	}
	rd.pos += headerLen + int64(length)
	rd.stats.Bytes += headerLen + uint64(length)
	rd.span++

	// BGP4MP_ET extends the timestamp with microseconds at the start of
	// the body (RFC 6396 §3).
	var micro uint32
	if typ == TypeBGP4MPET {
		if len(body) < 4 {
			return nil, rd.wrapHeaderless(typ, sub, ErrBadRecord)
		}
		micro = binary.BigEndian.Uint32(body[0:4])
		body = body[4:]
	}

	// Reset the record and the decode arenas; indices recorded while
	// parsing refer to the post-reset arenas.
	rd.asns = rd.asns[:0]
	rd.segMeta = rd.segMeta[:0]
	rd.comms = rd.comms[:0]
	rd.entMeta = rd.entMeta[:0]
	rd.rec = Record{
		Offset:  rd.off,
		Span:    rd.span,
		Time:    time.Unix(int64(ts), int64(micro)*1000).UTC(),
		Type:    typ,
		Subtype: sub,
	}

	var err error
	switch {
	case typ == TypeTableDumpV2 && sub == SubPeerIndexTable:
		err = rd.decodePeerIndex(body)
	case typ == TypeTableDumpV2 && sub == SubRIBIPv4Unicast:
		err = rd.decodeRIB(body)
	case (typ == TypeBGP4MP || typ == TypeBGP4MPET) && (sub == SubMessage || sub == SubMessageAS4):
		err = rd.decodeMessage(body, sub == SubMessageAS4)
	case (typ == TypeBGP4MP || typ == TypeBGP4MPET) && (sub == SubStateChange || sub == SubStateChangeAS4):
		err = rd.decodeStateChange(body, sub == SubStateChangeAS4)
	default:
		rd.rec.Kind = KindSkipped
		rd.stats.Skipped++
	}
	if err != nil {
		return nil, rd.wrap(err)
	}
	rd.stats.Records++
	return &rd.rec, nil
}

// wrapHeaderless is wrap for errors detected before rd.rec is reset.
func (rd *Reader) wrapHeaderless(typ, sub uint16, err error) error {
	return &RecordError{Offset: rd.off, Span: rd.span, Type: typ, Subtype: sub, Err: err}
}

// mapASN narrows a wire AS number into the 16-bit space, substituting
// ASTrans (and counting it) when the value does not fit.
//
//repro:allocfree
func (rd *Reader) mapASN(v uint32) astypes.ASN {
	if v > 0xffff {
		rd.stats.AS4Substituted++
		return ASTrans
	}
	return astypes.ASN(v)
}

// decodePeerIndex parses a PEER_INDEX_TABLE and installs it as the
// current peer table. Once-per-archive, so it allocates freely.
func (rd *Reader) decodePeerIndex(body []byte) error {
	if len(body) < 6 {
		return fmt.Errorf("%w: peer index table %d bytes", ErrBadRecord, len(body))
	}
	collectorID := binary.BigEndian.Uint32(body[0:4])
	vLen := int(binary.BigEndian.Uint16(body[4:6]))
	if len(body) < 6+vLen+2 {
		return fmt.Errorf("%w: view name %d bytes exceeds record", ErrBadRecord, vLen)
	}
	viewName := string(body[6 : 6+vLen])
	count := int(binary.BigEndian.Uint16(body[6+vLen : 8+vLen]))
	data := body[8+vLen:]
	peers := make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(data) < 1 {
			return fmt.Errorf("%w: truncated peer entry %d", ErrBadRecord, i)
		}
		pt := data[0]
		var p Peer
		p.IPv6 = pt&0x01 != 0
		as4 := pt&0x02 != 0
		ipLen, asLen := 4, 2
		if p.IPv6 {
			ipLen = 16
		}
		if as4 {
			asLen = 4
		}
		if len(data) < 1+4+ipLen+asLen {
			return fmt.Errorf("%w: truncated peer entry %d", ErrBadRecord, i)
		}
		p.BGPID = binary.BigEndian.Uint32(data[1:5])
		if !p.IPv6 {
			p.IP = binary.BigEndian.Uint32(data[5 : 5+4])
		}
		if as4 {
			p.AS = binary.BigEndian.Uint32(data[5+ipLen:])
		} else {
			p.AS = uint32(binary.BigEndian.Uint16(data[5+ipLen:]))
		}
		peers = append(peers, p)
		data = data[1+4+ipLen+asLen:]
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after peer table", ErrBadRecord, len(data))
	}
	rd.havePeers = true
	rd.peers = peers
	rd.viewName = viewName
	rd.collectorID = collectorID
	rd.rec.Kind = KindPeerIndex
	rd.rec.CollectorID = collectorID
	rd.rec.ViewName = viewName
	rd.rec.Peers = peers
	return nil
}

// decodeRIB parses a RIB_IPV4_UNICAST record: one prefix and its
// per-peer entries. AS_PATH values are always 4-byte (RFC 6396 §4.3.4).
//
//repro:allocfree
func (rd *Reader) decodeRIB(body []byte) error {
	if !rd.havePeers {
		return ErrNoPeerIndex
	}
	if len(body) < 5 {
		return fmt.Errorf("%w: RIB record %d bytes", ErrBadRecord, len(body))
	}
	seq := binary.BigEndian.Uint32(body[0:4])
	pLen := body[4]
	if pLen > 32 {
		return fmt.Errorf("%w: prefix length %d", ErrBadRecord, pLen)
	}
	octets := (int(pLen) + 7) / 8
	if len(body) < 5+octets+2 {
		return fmt.Errorf("%w: truncated prefix", ErrBadRecord)
	}
	var addr uint32
	for i := 0; i < octets; i++ {
		addr |= uint32(body[5+i]) << uint(24-8*i)
	}
	if pLen > 0 {
		addr &= ^uint32(0) << (32 - pLen)
	} else {
		addr = 0
	}
	prefix, err := astypes.NewPrefix(addr, pLen)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRecord, err)
	}
	count := int(binary.BigEndian.Uint16(body[5+octets : 7+octets]))
	data := body[7+octets:]
	for i := 0; i < count; i++ {
		if len(data) < 8 {
			return fmt.Errorf("%w: truncated RIB entry %d", ErrBadRecord, i)
		}
		peerIndex := binary.BigEndian.Uint16(data[0:2])
		if int(peerIndex) >= len(rd.peers) {
			return fmt.Errorf("%w: index %d with %d peers", ErrBadPeerIndex, peerIndex, len(rd.peers))
		}
		originated := binary.BigEndian.Uint32(data[2:6])
		aLen := int(binary.BigEndian.Uint16(data[6:8]))
		if aLen == 0 {
			// An entry with no attributes has no ORIGIN or AS_PATH: it
			// carries nothing the monitor can use and real table dumps
			// never emit it, so it marks corruption.
			return fmt.Errorf("%w: zero-length RIB entry %d", ErrBadRecord, i)
		}
		if len(data) < 8+aLen {
			return fmt.Errorf("%w: RIB entry %d attributes %d bytes exceed record", ErrBadRecord, i, aLen)
		}
		rd.scr = attrScratch{}
		if err := rd.decodeAttrs(data[8:8+aLen], true, &rd.scr); err != nil {
			return err
		}
		rd.entMeta = append(rd.entMeta, entryMeta{
			peerIndex:  peerIndex,
			originated: originated,
			s:          rd.scr,
		})
		data = data[8+aLen:]
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after RIB entries", ErrBadRecord, len(data))
	}
	// The record parsed completely: the arenas stop moving, so the
	// entry slices can be carved.
	rd.materializeSegs()
	if cap(rd.entries) < len(rd.entMeta) {
		//repro:vet ignore allocfree -- entry arena growth: amortized to zero at the archive's widest RIB record
		rd.entries = make([]RIBEntry, 0, 2*len(rd.entMeta))
	}
	rd.entries = rd.entries[:0]
	for _, m := range rd.entMeta {
		rd.entries = append(rd.entries, RIBEntry{
			PeerIndex:    m.peerIndex,
			PeerAS:       rd.peers[m.peerIndex].ASN(),
			Originated:   m.originated,
			Origin:       m.s.origin,
			Path:         rd.pathFor(m.s),
			NextHop:      m.s.nextHop,
			LocalPref:    m.s.localPref,
			HasLocalPref: m.s.hasLocalPref,
			Communities:  rd.commsFor(m.s),
		})
	}
	rd.rec.Kind = KindRIB
	rd.rec.Seq = seq
	rd.rec.Prefix = prefix
	rd.rec.Entries = rd.entries
	rd.stats.RIBPrefixes++
	rd.stats.RIBEntries += uint64(len(rd.entries))
	return nil
}

// materializeSegs builds the segment arena from the recorded index
// ranges. Pre-sized before the loop so the appends never move the
// backing array under the slices being carved from it.
//
//repro:allocfree
func (rd *Reader) materializeSegs() {
	if cap(rd.segs) < len(rd.segMeta) {
		//repro:vet ignore allocfree -- segment arena growth: amortized to zero at the archive's deepest record
		rd.segs = make([]astypes.Segment, 0, 2*len(rd.segMeta))
	}
	rd.segs = rd.segs[:0]
	for _, m := range rd.segMeta {
		rd.segs = append(rd.segs, astypes.Segment{
			Type: m.typ,
			ASNs: rd.asns[m.lo:m.hi:m.hi],
		})
	}
}

//repro:allocfree
func (rd *Reader) pathFor(s attrScratch) astypes.ASPath {
	if s.segLo == s.segHi {
		return astypes.ASPath{}
	}
	return astypes.ASPath{Segments: rd.segs[s.segLo:s.segHi:s.segHi]}
}

//repro:allocfree
func (rd *Reader) commsFor(s attrScratch) []astypes.Community {
	if s.commLo == s.commHi {
		return nil
	}
	return rd.comms[s.commLo:s.commHi:s.commHi]
}

// decodeMessage parses a BGP4MP MESSAGE or MESSAGE_AS4 body: the peer
// header followed by one raw BGP message. UPDATEs decode into the
// Reader's scratch wire.Update; other message types are exposed by
// their type code only.
//
//repro:allocfree
func (rd *Reader) decodeMessage(body []byte, as4 bool) error {
	peerAS, localAS, rest, err := rd.decodePeerHeader(body, as4)
	if err != nil {
		return err
	}
	if len(rest) < wire.HeaderLen {
		return fmt.Errorf("%w: BGP message %d bytes < header", ErrBadRecord, len(rest))
	}
	for i := 0; i < 16; i++ {
		if rest[i] != 0xff {
			return fmt.Errorf("%w: bad BGP marker", ErrBadRecord)
		}
	}
	mLen := int(binary.BigEndian.Uint16(rest[16:18]))
	if mLen != len(rest) || mLen > wire.MaxMessageLen {
		return fmt.Errorf("%w: BGP message declares %d bytes, record carries %d", ErrBadRecord, mLen, len(rest))
	}
	rd.rec.Kind = KindMessage
	rd.rec.PeerAS = peerAS
	rd.rec.LocalAS = localAS
	rd.rec.MsgType = wire.MsgType(rest[18])
	rd.stats.Messages++
	if rd.rec.MsgType == wire.MsgUpdate {
		if err := rd.decodeUpdateBody(rest[wire.HeaderLen:], as4); err != nil {
			return err
		}
		rd.rec.Update = &rd.upd
		rd.stats.Updates++
	}
	return nil
}

// decodeStateChange parses a BGP4MP STATE_CHANGE(_AS4) body.
//
//repro:allocfree
func (rd *Reader) decodeStateChange(body []byte, as4 bool) error {
	peerAS, localAS, rest, err := rd.decodePeerHeader(body, as4)
	if err != nil {
		return err
	}
	if len(rest) != 4 {
		return fmt.Errorf("%w: state change carries %d bytes, want 4", ErrBadRecord, len(rest))
	}
	rd.rec.Kind = KindStateChange
	rd.rec.PeerAS = peerAS
	rd.rec.LocalAS = localAS
	rd.rec.OldState = binary.BigEndian.Uint16(rest[0:2])
	rd.rec.NewState = binary.BigEndian.Uint16(rest[2:4])
	rd.stats.StateChanges++
	return nil
}

// decodePeerHeader parses the BGP4MP peer header shared by MESSAGE and
// STATE_CHANGE: peer AS, local AS (2 or 4 bytes), interface index, AFI,
// and the two addresses. Returns the narrowed AS numbers and the bytes
// that follow.
//
//repro:allocfree
func (rd *Reader) decodePeerHeader(body []byte, as4 bool) (peerAS, localAS astypes.ASN, rest []byte, err error) {
	asLen := 2
	if as4 {
		asLen = 4
	}
	need := 2*asLen + 4 // ASes + interface index + AFI
	if len(body) < need {
		return 0, 0, nil, fmt.Errorf("%w: BGP4MP header %d bytes", ErrBadRecord, len(body))
	}
	var pAS, lAS uint32
	if as4 {
		pAS = binary.BigEndian.Uint32(body[0:4])
		lAS = binary.BigEndian.Uint32(body[4:8])
	} else {
		pAS = uint32(binary.BigEndian.Uint16(body[0:2]))
		lAS = uint32(binary.BigEndian.Uint16(body[2:4]))
	}
	afi := binary.BigEndian.Uint16(body[need-2 : need])
	body = body[need:]
	ipLen := 4
	switch afi {
	case 1:
	case 2:
		ipLen = 16
	default:
		return 0, 0, nil, fmt.Errorf("%w: AFI %d", ErrBadRecord, afi)
	}
	if len(body) < 2*ipLen {
		return 0, 0, nil, fmt.Errorf("%w: truncated peer addresses", ErrBadRecord)
	}
	return rd.mapASN(pAS), rd.mapASN(lAS), body[2*ipLen:], nil
}

// decodeUpdateBody parses the body of an embedded BGP UPDATE into the
// Reader's scratch wire.Update. Identical framing to the wire codec,
// with the AS_PATH width parameterized: MESSAGE_AS4 records carry
// 4-byte AS numbers.
//
//repro:allocfree
func (rd *Reader) decodeUpdateBody(body []byte, as4 bool) error {
	rd.upd.Withdrawn = rd.upd.Withdrawn[:0]
	rd.upd.NLRI = rd.upd.NLRI[:0]
	rd.upd.Attrs = wire.PathAttrs{}
	if len(body) < 4 {
		return fmt.Errorf("%w: UPDATE body %d bytes", ErrBadRecord, len(body))
	}
	wLen := int(binary.BigEndian.Uint16(body[0:2]))
	rest := body[2:]
	if wLen > len(rest) {
		return fmt.Errorf("%w: withdrawn length %d exceeds body", ErrBadRecord, wLen)
	}
	var err error
	rd.upd.Withdrawn, err = appendPrefixes(rd.upd.Withdrawn, rest[:wLen])
	if err != nil {
		return fmt.Errorf("%w: withdrawn routes: %v", ErrBadRecord, err)
	}
	rest = rest[wLen:]
	if len(rest) < 2 {
		return fmt.Errorf("%w: missing attribute length", ErrBadRecord)
	}
	aLen := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if aLen > len(rest) {
		return fmt.Errorf("%w: attribute length %d exceeds body", ErrBadRecord, aLen)
	}
	rd.scr = attrScratch{}
	if err := rd.decodeAttrs(rest[:aLen], as4, &rd.scr); err != nil {
		return err
	}
	rd.upd.NLRI, err = appendPrefixes(rd.upd.NLRI, rest[aLen:])
	if err != nil {
		return fmt.Errorf("%w: NLRI: %v", ErrBadRecord, err)
	}
	if len(rd.upd.NLRI) > 0 {
		if !rd.scr.hasOrigin {
			return fmt.Errorf("%w: UPDATE with NLRI but no ORIGIN", ErrBadRecord)
		}
		if !rd.scr.hasNextHop {
			return fmt.Errorf("%w: UPDATE with NLRI but no NEXT_HOP", ErrBadRecord)
		}
	}
	rd.materializeSegs()
	rd.upd.Attrs = wire.PathAttrs{
		HasOrigin:       rd.scr.hasOrigin,
		Origin:          rd.scr.origin,
		ASPath:          rd.pathFor(rd.scr),
		HasNextHop:      rd.scr.hasNextHop,
		NextHop:         rd.scr.nextHop,
		HasLocalPref:    rd.scr.hasLocalPref,
		LocalPref:       rd.scr.localPref,
		AtomicAggregate: rd.scr.atomicAggregate,
		HasAggregator:   rd.scr.hasAggregator,
		AggregatorAS:    rd.scr.aggregatorAS,
		AggregatorID:    rd.scr.aggregatorID,
		Communities:     rd.commsFor(rd.scr),
	}
	return nil
}

// Path attribute codes decoded (or deliberately skipped) by the MRT
// attribute parser. The wire package keeps its equivalents unexported;
// MRT needs its own table anyway for the 4-byte-AS variants.
const (
	aOrigin          uint8 = 1
	aASPath          uint8 = 2
	aNextHop         uint8 = 3
	aLocalPref       uint8 = 5
	aAtomicAggregate uint8 = 6
	aAggregator      uint8 = 7
	aCommunity       uint8 = 8
)

// Attribute flag bits.
const (
	afOptional uint8 = 0x80
	afExtLen   uint8 = 0x10
)

// decodeAttrs parses one attribute block into s, appending path
// segments and communities to the Reader's arenas and recording only
// index ranges. Attributes outside the decoded set — MED, MP_REACH,
// AS4_PATH (which adds nothing when ASNs narrow to 16 bits anyway), … —
// are skipped and counted, never an error: archive attribute diversity
// is far wider than a live paper-era session's.
//
//repro:allocfree
func (rd *Reader) decodeAttrs(data []byte, as4 bool, s *attrScratch) error {
	s.segLo = int32(len(rd.segMeta))
	s.segHi = s.segLo
	s.commLo = int32(len(rd.comms))
	s.commHi = s.commLo
	var seen [256]bool
	for len(data) > 0 {
		if len(data) < 3 {
			return fmt.Errorf("%w: truncated attribute header", ErrBadRecord)
		}
		flags, code := data[0], data[1]
		var vLen, off int
		if flags&afExtLen != 0 {
			if len(data) < 4 {
				return fmt.Errorf("%w: truncated extended attribute length", ErrBadRecord)
			}
			vLen = int(binary.BigEndian.Uint16(data[2:4]))
			off = 4
		} else {
			vLen = int(data[2])
			off = 3
		}
		if off+vLen > len(data) {
			return fmt.Errorf("%w: attribute %d length %d exceeds block", ErrBadRecord, code, vLen)
		}
		val := data[off : off+vLen]
		data = data[off+vLen:]
		if seen[code] {
			return fmt.Errorf("%w: duplicate attribute %d", ErrBadRecord, code)
		}
		seen[code] = true
		switch code {
		case aOrigin:
			if vLen != 1 || val[0] > uint8(wire.OriginIncomplete) {
				return fmt.Errorf("%w: ORIGIN length %d", ErrBadRecord, vLen)
			}
			s.hasOrigin, s.origin = true, wire.OriginCode(val[0])
		case aASPath:
			if err := rd.decodeASPath(val, as4); err != nil {
				return err
			}
			s.segHi = int32(len(rd.segMeta))
		case aNextHop:
			if vLen != 4 {
				return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadRecord, vLen)
			}
			s.hasNextHop, s.nextHop = true, binary.BigEndian.Uint32(val)
		case aLocalPref:
			if vLen != 4 {
				return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadRecord, vLen)
			}
			s.hasLocalPref, s.localPref = true, binary.BigEndian.Uint32(val)
		case aAtomicAggregate:
			if vLen != 0 {
				return fmt.Errorf("%w: ATOMIC_AGGREGATE length %d", ErrBadRecord, vLen)
			}
			s.atomicAggregate = true
		case aAggregator:
			// 6 bytes with a 2-byte AS, 8 with a 4-byte one; archives mix
			// both widths regardless of the record subtype.
			switch vLen {
			case 6:
				s.aggregatorAS = rd.mapASN(uint32(binary.BigEndian.Uint16(val[0:2])))
				s.aggregatorID = binary.BigEndian.Uint32(val[2:6])
			case 8:
				s.aggregatorAS = rd.mapASN(binary.BigEndian.Uint32(val[0:4]))
				s.aggregatorID = binary.BigEndian.Uint32(val[4:8])
			default:
				return fmt.Errorf("%w: AGGREGATOR length %d", ErrBadRecord, vLen)
			}
			s.hasAggregator = true
		case aCommunity:
			if vLen%4 != 0 {
				return fmt.Errorf("%w: COMMUNITY length %d", ErrBadRecord, vLen)
			}
			for i := 0; i < vLen; i += 4 {
				rd.comms = append(rd.comms, astypes.NewCommunity(
					astypes.ASN(binary.BigEndian.Uint16(val[i:i+2])),
					binary.BigEndian.Uint16(val[i+2:i+4])))
			}
			s.commHi = int32(len(rd.comms))
		default:
			rd.stats.SkippedAttrs++
		}
	}
	return nil
}

// decodeASPath appends the AS_PATH segments in val to the arenas, with
// the AS width (2 or 4 bytes) set by the record subtype. TABLE_DUMP_V2
// RIB entries are always 4-byte (RFC 6396 §4.3.4).
//
//repro:allocfree
func (rd *Reader) decodeASPath(val []byte, as4 bool) error {
	asLen := 2
	if as4 {
		asLen = 4
	}
	for len(val) > 0 {
		if len(val) < 2 {
			return fmt.Errorf("%w: truncated AS_PATH segment header", ErrBadRecord)
		}
		segType, count := val[0], int(val[1])
		if segType != uint8(astypes.SegSequence) && segType != uint8(astypes.SegSet) {
			return fmt.Errorf("%w: AS_PATH segment type %d", ErrBadRecord, segType)
		}
		need := 2 + asLen*count
		if len(val) < need {
			return fmt.Errorf("%w: AS_PATH segment needs %d bytes, have %d", ErrBadRecord, need, len(val))
		}
		lo := int32(len(rd.asns))
		for i := 0; i < count; i++ {
			off := 2 + asLen*i
			var v uint32
			if as4 {
				v = binary.BigEndian.Uint32(val[off : off+4])
			} else {
				v = uint32(binary.BigEndian.Uint16(val[off : off+2]))
			}
			rd.asns = append(rd.asns, rd.mapASN(v))
		}
		rd.segMeta = append(rd.segMeta, segRange{
			typ: astypes.SegmentType(segType),
			lo:  lo,
			hi:  int32(len(rd.asns)),
		})
		val = val[need:]
	}
	return nil
}

// appendPrefixes appends the prefixes encoded in data to out (the same
// framing as BGP NLRI; the wire package keeps its decoder unexported).
//
//repro:allocfree
func appendPrefixes(out []astypes.Prefix, data []byte) ([]astypes.Prefix, error) {
	for len(data) > 0 {
		length := data[0]
		if length > 32 {
			return nil, fmt.Errorf("prefix length %d out of range", length)
		}
		octets := (int(length) + 7) / 8
		if len(data) < 1+octets {
			return nil, fmt.Errorf("truncated prefix of length %d", length)
		}
		var addr uint32
		for i := 0; i < octets; i++ {
			addr |= uint32(data[1+i]) << uint(24-8*i)
		}
		if length > 0 {
			addr &= ^uint32(0) << (32 - length)
		} else {
			addr = 0
		}
		p, err := astypes.NewPrefix(addr, length)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		data = data[1+octets:]
	}
	return out, nil
}
