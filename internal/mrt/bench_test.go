package mrt

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// BenchmarkMRTColdLoad measures a full cold table load: a fresh Reader
// decoding a synthetic ≥100k-prefix TABLE_DUMP_V2 archive end to end,
// the shape of loading a RouteViews snapshot at startup.
func BenchmarkMRTColdLoad(b *testing.B) {
	const prefixes = 100000
	data := writeSyntheticTable(b, prefixes)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := rd.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if s := rd.Stats(); s.RIBPrefixes != prefixes {
			b.Fatalf("decoded %d prefixes, want %d", s.RIBPrefixes, prefixes)
		}
	}
	b.ReportMetric(float64(prefixes)*float64(b.N)/b.Elapsed().Seconds(), "prefixes/s")
}

// BenchmarkMRTChurn measures the steady-state update-trace path: one
// warmed Reader consuming an endless stream of BGP4MP updates and RIB
// refreshes. The allocs/op column is the //repro:allocfree contract
// made visible (TestSteadyStateAllocFree enforces the exact zero).
func BenchmarkMRTChurn(b *testing.B) {
	t0 := time.Unix(1000000000, 0).UTC()
	var head, loop bytes.Buffer
	w := NewWriter(&head)
	peers := []Peer{{BGPID: 1, IP: 0xC0000201, AS: 65001}}
	if err := w.WritePeerIndex(t0, 1, "churn", peers); err != nil {
		b.Fatal(err)
	}
	w = NewWriter(&loop)
	ent := []RIBEntry{{
		PeerAS: 65001, Origin: wire.OriginIGP,
		Path:    astypes.NewSeqPath(65001, 64512, 64513),
		NextHop: 0xC0000201,
	}}
	if err := w.WriteRIB(t0, 1, astypes.MustPrefix(0x0A000000, 24), ent); err != nil {
		b.Fatal(err)
	}
	u := &wire.Update{NLRI: []astypes.Prefix{astypes.MustPrefix(0x0A010000, 24)}}
	u.Attrs.HasOrigin, u.Attrs.HasNextHop = true, true
	u.Attrs.NextHop = 0xC0000201
	u.Attrs.ASPath = astypes.NewSeqPath(65001, 64512)
	u.Attrs.Communities = []astypes.Community{0xFDE90064}
	if err := w.WriteUpdate(t0, 65001, 6447, 0xC0000201, 0xC0000202, u); err != nil {
		b.Fatal(err)
	}

	rd, err := NewReader(io.MultiReader(bytes.NewReader(head.Bytes()), &loopReader{data: loop.Bytes()}))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ { // warm the arenas
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rd.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
