package rislive

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

const sampleUpdate = `{"type":"ris_message","data":{"timestamp":1000000000.5,"peer":"192.0.2.9","peer_asn":"65001","id":"x","host":"rrc00","type":"UPDATE","path":[65001,[64900,64901],65002],"community":[[65001,100],[65001,200]],"origin":"igp","announcements":[{"next_hop":"192.0.2.1","prefixes":["10.0.0.0/8","2001:db8::/32","192.0.2.128/25"]}],"withdrawals":["198.51.100.0/24"]}}`

func TestDecodeUpdate(t *testing.T) {
	ev, err := Decode([]byte(sampleUpdate))
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("event skipped")
	}
	if ev.Time != time.Unix(1000000000, 500000000).UTC() {
		t.Errorf("time %v", ev.Time)
	}
	if ev.Peer != "192.0.2.9" || ev.PeerASN != 65001 || ev.Host != "rrc00" {
		t.Errorf("peer %q asn %d host %q", ev.Peer, ev.PeerASN, ev.Host)
	}
	wantPath := astypes.ASPath{Segments: []astypes.Segment{
		{Type: astypes.SegSequence, ASNs: []astypes.ASN{65001}},
		{Type: astypes.SegSet, ASNs: []astypes.ASN{64900, 64901}},
		{Type: astypes.SegSequence, ASNs: []astypes.ASN{65002}},
	}}
	if !reflect.DeepEqual(ev.Update.Attrs.ASPath, wantPath) {
		t.Errorf("path %+v", ev.Update.Attrs.ASPath)
	}
	wantComms := []astypes.Community{
		astypes.Community(65001)<<16 | 100,
		astypes.Community(65001)<<16 | 200,
	}
	if !reflect.DeepEqual(ev.Update.Attrs.Communities, wantComms) {
		t.Errorf("communities %v", ev.Update.Attrs.Communities)
	}
	if !ev.Update.Attrs.HasOrigin || ev.Update.Attrs.Origin != wire.OriginIGP {
		t.Errorf("origin %+v", ev.Update.Attrs)
	}
	if !ev.Update.Attrs.HasNextHop || ev.Update.Attrs.NextHop != 0xC0000201 {
		t.Errorf("next hop %x", ev.Update.Attrs.NextHop)
	}
	wantNLRI := []astypes.Prefix{
		astypes.MustPrefix(0x0A000000, 8),
		astypes.MustPrefix(0xC0000280, 25),
	}
	if !reflect.DeepEqual(ev.Update.NLRI, wantNLRI) {
		t.Errorf("NLRI %v", ev.Update.NLRI)
	}
	if len(ev.Update.Withdrawn) != 1 || ev.Update.Withdrawn[0] != astypes.MustPrefix(0xC6336400, 24) {
		t.Errorf("withdrawn %v", ev.Update.Withdrawn)
	}
	if ev.SkippedPrefixes != 1 {
		t.Errorf("skipped %d prefixes, want 1 (the IPv6 one)", ev.SkippedPrefixes)
	}
}

func TestDecodeSkips(t *testing.T) {
	for name, line := range map[string]string{
		"keepalive":  `{"type":"ris_message","data":{"type":"KEEPALIVE"}}`,
		"state":      `{"type":"ris_rrc_info","data":{}}`,
		"open":       `{"type":"ris_message","data":{"type":"OPEN","peer_asn":"1"}}`,
		"pure-ipv6":  `{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"1","origin":"igp","announcements":[{"next_hop":"2001:db8::1","prefixes":["2001:db8::/32"]}]}}`,
		"empty-body": `{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"1"}}`,
	} {
		ev, err := Decode([]byte(line))
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if ev != nil {
			t.Errorf("%s: decoded %+v, want skip", name, ev)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	for name, line := range map[string]string{
		"bad-json":    `{"type":"ris_message","data"`,
		"bad-asn":     `{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"banana"}}`,
		"bad-origin":  `{"type":"ris_message","data":{"type":"UPDATE","origin":"weird","withdrawals":["10.0.0.0/8"]}}`,
		"bad-prefix":  `{"type":"ris_message","data":{"type":"UPDATE","withdrawals":["10.0.0.0"]}}`,
		"bad-preflen": `{"type":"ris_message","data":{"type":"UPDATE","withdrawals":["10.0.0.0/64"]}}`,
		"bad-path":    `{"type":"ris_message","data":{"type":"UPDATE","path":["x"],"withdrawals":["10.0.0.0/8"]}}`,
	} {
		if _, err := Decode([]byte(line)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeAS4Substitution(t *testing.T) {
	line := `{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"196615","origin":"igp","path":[196615,65001],"announcements":[{"next_hop":"10.0.0.1","prefixes":["10.0.0.0/8"]}]}}`
	ev, err := Decode([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if ev.PeerASN != ASTrans {
		t.Errorf("peer ASN %d, want AS_TRANS", ev.PeerASN)
	}
	want := []astypes.ASN{ASTrans, 65001}
	if got := ev.Update.Attrs.ASPath.Segments[0].ASNs; !reflect.DeepEqual(got, want) {
		t.Errorf("path %v, want %v", got, want)
	}
	if ev.Substituted != 2 {
		t.Errorf("substituted %d, want 2 (peer + path)", ev.Substituted)
	}
}

func TestDecodeMissingOriginDefaults(t *testing.T) {
	line := `{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"1","announcements":[{"next_hop":"10.0.0.1","prefixes":["10.0.0.0/8"]}]}}`
	ev, err := Decode([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Update.Attrs.HasOrigin || ev.Update.Attrs.Origin != wire.OriginIncomplete {
		t.Errorf("attrs %+v, want defaulted INCOMPLETE origin", ev.Update.Attrs)
	}
}

func TestParseIPv4(t *testing.T) {
	for s, want := range map[string]struct {
		addr uint32
		ok   bool
	}{
		"192.0.2.1":       {0xC0000201, true},
		"0.0.0.0":         {0, true},
		"255.255.255.255": {0xFFFFFFFF, true},
		"256.0.0.1":       {0, false},
		"1.2.3":           {0, false},
		"1.2.3.4.5":       {0, false},
		"1..2.3":          {0, false},
		"a.b.c.d":         {0, false},
		"":                {0, false},
		"1234.1.1.1":      {0, false},
	} {
		addr, ok := parseIPv4(s)
		if ok != want.ok || addr != want.addr {
			t.Errorf("parseIPv4(%q) = %x, %v; want %x, %v", s, addr, ok, want.addr, want.ok)
		}
	}
}

// FuzzRISLiveJSON: arbitrary bytes must never panic, and any event that
// comes back is internally consistent — it carries at least one
// prefix, and every prefix is a valid IPv4 prefix.
func FuzzRISLiveJSON(f *testing.F) {
	f.Add([]byte(sampleUpdate))
	f.Add([]byte(`{"type":"ris_message","data":{"type":"UPDATE","peer_asn":"196615","path":[1,[2,3]],"origin":"egp","withdrawals":["10.0.0.0/8"]}}`))
	f.Add([]byte(`{"type":"ris_message","data":{"type":"KEEPALIVE"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := Decode(line)
		if err != nil {
			if ev != nil {
				t.Fatal("error with non-nil event")
			}
			return
		}
		if ev == nil {
			return
		}
		if len(ev.Update.NLRI) == 0 && len(ev.Update.Withdrawn) == 0 {
			t.Fatal("delivered event with no IPv4 content")
		}
		for _, p := range append(append([]astypes.Prefix(nil), ev.Update.NLRI...), ev.Update.Withdrawn...) {
			if _, err := astypes.NewPrefix(p.Addr, p.Len); err != nil {
				t.Fatalf("invalid prefix %v: %v", p, err)
			}
		}
		if len(ev.Update.NLRI) > 0 && !ev.Update.Attrs.HasOrigin {
			t.Fatal("announcement without origin")
		}
	})
}
