package rislive

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// feedLine renders one UPDATE announcing 10.<i>.0.0/16.
func feedLine(i int) string {
	return fmt.Sprintf(`{"type":"ris_message","data":{"timestamp":%d,"peer":"192.0.2.9","peer_asn":"65001","host":"rrc00","type":"UPDATE","path":[65001,65002],"origin":"igp","announcements":[{"next_hop":"192.0.2.1","prefixes":["10.%d.0.0/16"]}]}}`, 1000000000+i, i%256)
}

func feed(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(feedLine(i))
		b.WriteByte('\n')
		if i%97 == 0 {
			b.WriteString("\n") // blank lines are tolerated
		}
		if i%131 == 0 {
			b.WriteString(`{"type":"ris_message","data":{"type":"KEEPALIVE"}}` + "\n")
		}
		if i%157 == 0 {
			b.WriteString("not json at all\n")
		}
	}
	return b.String()
}

// snapshotLoop hammers Counters() while the stage is mid-flight and
// checks the snapshot invariant Delivered + Dropped <= Received on
// every read — not just at quiescence. Stop it by closing stop; the
// number of snapshots taken arrives on the returned channel.
func snapshotLoop(t *testing.T, s *Stage, stop <-chan struct{}) <-chan int {
	t.Helper()
	out := make(chan int, 1)
	go func() {
		snapshots := 0
		for {
			select {
			case <-stop:
				out <- snapshots
				return
			default:
			}
			c := s.Counters()
			if c.Delivered+c.Dropped > c.Received {
				t.Errorf("mid-flight snapshot violates invariant: delivered %d + dropped %d > received %d",
					c.Delivered, c.Dropped, c.Received)
				out <- snapshots
				return
			}
			snapshots++
		}
	}()
	return out
}

// TestBackpressureSoakDrop runs a deliberately slow consumer against
// the drop policy: the producer never stalls, memory stays bounded by
// the channel capacity, every mid-flight Counters snapshot satisfies
// Delivered + Dropped <= Received, and at quiescence the books balance
// exactly with a nonzero drop count.
func TestBackpressureSoakDrop(t *testing.T) {
	const n = 20000
	s := NewStage(Config{Buffer: 8, Policy: PolicyDrop})
	stop := make(chan struct{})
	snaps := snapshotLoop(t, s, stop)
	done := make(chan struct{})
	var consumed uint64
	go func() {
		defer close(done)
		for range s.Events() {
			consumed++
			if consumed%64 == 0 {
				time.Sleep(50 * time.Microsecond) // the slow consumer
			}
		}
	}()
	if err := s.RunReader(context.Background(), strings.NewReader(feed(n))); err != nil {
		t.Fatal(err)
	}
	<-done
	close(stop)
	if taken := <-snaps; taken == 0 {
		t.Error("snapshot loop never ran mid-flight")
	}
	c := s.Counters()
	if c.Received != n {
		t.Errorf("received %d, want %d", c.Received, n)
	}
	if c.Delivered+c.Dropped != c.Received {
		t.Errorf("accounting broken: delivered %d + dropped %d != received %d",
			c.Delivered, c.Dropped, c.Received)
	}
	if c.Dropped == 0 {
		t.Error("slow consumer with buffer 8 dropped nothing; soak is not soaking")
	}
	if consumed != c.Delivered {
		t.Errorf("consumer saw %d events, stage delivered %d", consumed, c.Delivered)
	}
	if c.ParseErrors == 0 || c.Skipped == 0 {
		t.Errorf("feed noise not accounted: %+v", c)
	}
}

// TestBackpressureSoakBlock runs the same slow consumer under the block
// policy: nothing is ever dropped, every event arrives, and mid-flight
// snapshots never overcount Delivered + Dropped against Received.
func TestBackpressureSoakBlock(t *testing.T) {
	const n = 5000
	s := NewStage(Config{Buffer: 8, Policy: PolicyBlock})
	stop := make(chan struct{})
	snaps := snapshotLoop(t, s, stop)
	done := make(chan struct{})
	var consumed uint64
	go func() {
		defer close(done)
		for range s.Events() {
			consumed++
			if consumed%64 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	if err := s.RunReader(context.Background(), strings.NewReader(feed(n))); err != nil {
		t.Fatal(err)
	}
	<-done
	close(stop)
	if taken := <-snaps; taken == 0 {
		t.Error("snapshot loop never ran mid-flight")
	}
	c := s.Counters()
	if c.Received != n || c.Delivered != n || c.Dropped != 0 {
		t.Errorf("block policy lost events: %+v", c)
	}
	if consumed != n {
		t.Errorf("consumer saw %d events, want %d", consumed, n)
	}
}

// TestBlockPolicyUnblocksOnCancel: a full channel with no consumer must
// not wedge RunReader forever — cancellation wins.
func TestBlockPolicyUnblocksOnCancel(t *testing.T) {
	s := NewStage(Config{Buffer: 1, Policy: PolicyBlock})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.RunReader(ctx, strings.NewReader(feed(100))) }()
	time.Sleep(10 * time.Millisecond) // let it fill the 1-slot buffer and block
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunReader did not return after cancel")
	}
}

func TestSpansAreOrdinals(t *testing.T) {
	s := NewStage(Config{Buffer: 64, Policy: PolicyBlock})
	go s.RunReader(context.Background(), strings.NewReader(feed(50)))
	var want uint64
	for ev := range s.Events() {
		want++
		if ev.Span != want {
			t.Fatalf("span %d, want %d", ev.Span, want)
		}
	}
}

// TestRunReconnects drives Run against an HTTP server that serves a
// short burst and hangs up, forcing the shared backoff reconnect loop
// to cycle.
func TestRunReconnects(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, feedLine(1)+"\n"+feedLine(2)+"\n")
	}))
	defer srv.Close()
	reg := telemetry.NewRegistry("test")
	s := NewStage(Config{
		URL:           srv.URL,
		Buffer:        16,
		Policy:        PolicyDrop,
		ReconnectBase: time.Millisecond,
		ReconnectMax:  4 * time.Millisecond,
		Registry:      reg,
		Seed:          1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Run(ctx) }()
	go func() {
		for range s.Events() {
		}
	}()
	deadline := time.After(5 * time.Second)
	for s.Counters().Reconnects < 3 {
		select {
		case <-deadline:
			t.Fatal("stage never reconnected")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	c := s.Counters()
	if c.Received < 6 {
		t.Errorf("received %d events across reconnects, want >= 6", c.Received)
	}
}

// TestRunBadStatus: a non-200 response is just another reconnect
// reason, not a hang.
func TestRunBadStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no feed here", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	s := NewStage(Config{
		URL:           srv.URL,
		ReconnectBase: time.Millisecond,
		ReconnectMax:  2 * time.Millisecond,
		Seed:          1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Run(ctx) }()
	deadline := time.After(5 * time.Second)
	for s.Counters().Reconnects < 2 {
		select {
		case <-deadline:
			t.Fatal("stage never retried after a bad status")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-errc
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("block"); err != nil || p != PolicyBlock {
		t.Errorf("block: %v %v", p, err)
	}
	if p, err := ParsePolicy("drop"); err != nil || p != PolicyDrop {
		t.Errorf("drop: %v %v", p, err)
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("bad policy accepted")
	}
	if PolicyBlock.String() != "block" || PolicyDrop.String() != "drop" {
		t.Error("policy strings wrong")
	}
}

// TestTelemetryMirrors: the registry counters track the atomic ones.
func TestTelemetryMirrors(t *testing.T) {
	reg := telemetry.NewRegistry("test")
	s := NewStage(Config{Buffer: 4, Policy: PolicyDrop, Registry: reg})
	go func() {
		for range s.Events() {
			time.Sleep(time.Millisecond)
		}
	}()
	if err := s.RunReader(context.Background(), strings.NewReader(feed(500))); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Received != 500 || c.Delivered+c.Dropped != c.Received {
		t.Fatalf("counters %+v", c)
	}
}
