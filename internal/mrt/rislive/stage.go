package rislive

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Policy selects what the Stage does when the bounded channel is full.
type Policy int

const (
	// PolicyBlock stalls the feed reader until the consumer catches up.
	// Over a real connection the stall propagates into TCP backpressure;
	// no event is ever lost, at the cost of the feed lagging.
	PolicyBlock Policy = iota
	// PolicyDrop discards the newest event and counts it, keeping the
	// feed reader at line rate. Delivered + Dropped never exceeds
	// Received in any snapshot and equals it exactly at quiescence (the
	// soak test enforces both).
	PolicyDrop
)

func (p Policy) String() string {
	if p == PolicyDrop {
		return "drop"
	}
	return "block"
}

// ParsePolicy maps the flag spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "drop":
		return PolicyDrop, nil
	default:
		return 0, fmt.Errorf("rislive: unknown backpressure policy %q (want block or drop)", s)
	}
}

// DefaultBuffer is the bounded-channel capacity when Config leaves it
// zero: enough to ride out consumer hiccups of a few thousand events
// without unbounded memory.
const DefaultBuffer = 1024

// Config parameterizes a Stage.
type Config struct {
	// URL is the streaming endpoint (NDJSON over HTTP), e.g.
	// https://ris-live.ripe.net/v1/stream/?format=json&client=repro.
	URL string
	// Buffer is the bounded-channel capacity (DefaultBuffer when 0).
	Buffer int
	// Policy selects the full-channel behavior.
	Policy Policy
	// ReconnectBase and ReconnectMax bound the shared backoff schedule
	// (1s and 30s when zero).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// Client overrides the HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Registry receives the stage's counters when non-nil.
	Registry *telemetry.Registry
	// Obs, if set, stamps each event's ingest instant before its line
	// decodes and records the decode-stage latency; the stamp rides the
	// Event so downstream consumers cross the later stages.
	Obs *obs.Recorder
	// Seed fixes the reconnect jitter for tests; 0 lets
	// backoff.NewJitter draw a per-instance wall-clock seed.
	Seed int64
}

// Counters is a snapshot of the stage's accounting. Received counts
// decoded UPDATE events entering delivery; Delivered + Dropped <=
// Received holds for every snapshot (an event in flight between its
// received increment and its delivery/drop accounts for the gap), with
// equality at any quiescent point.
type Counters struct {
	Received    uint64
	Delivered   uint64
	Dropped     uint64
	ParseErrors uint64
	Skipped     uint64 // well-formed lines with nothing to deliver
	Reconnects  uint64
}

// Stage pumps a RIS-Live feed into a bounded channel. Create with
// NewStage, consume Events(), and drive it with Run (HTTP + reconnect)
// or RunReader (one already-open stream, e.g. a recorded file).
type Stage struct {
	cfg Config
	out chan *Event

	received    atomic.Uint64
	delivered   atomic.Uint64
	dropped     atomic.Uint64
	parseErrors atomic.Uint64
	skipped     atomic.Uint64
	reconnects  atomic.Uint64

	// connected tracks whether the feed is currently attached to a
	// source (HTTP 200 established, or a RunReader stream in progress);
	// readiness probes consult it.
	connected atomic.Bool

	// Mirrored telemetry counters (nil when no registry was given).
	mReceived    *telemetry.Counter
	mDelivered   *telemetry.Counter
	mDropped     *telemetry.Counter
	mParseErrors *telemetry.Counter
	mReconnects  *telemetry.Counter
	mQueue       *telemetry.Gauge
	mConnected   *telemetry.Gauge
	// mLagMs is the stream-lag watermark (wall clock minus the event's
	// feed timestamp); mLag is its histogram twin for distribution.
	mLagMs *telemetry.Gauge
	mLag   *telemetry.Histogram
}

// NewStage returns a Stage with the channel allocated but no connection
// made yet.
func NewStage(cfg Config) *Stage {
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = time.Second
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 30 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	s := &Stage{cfg: cfg, out: make(chan *Event, cfg.Buffer)}
	if r := cfg.Registry; r != nil {
		s.mReceived = r.Counter("rislive_received_total", "UPDATE events decoded from the feed.")
		s.mDelivered = r.Counter("rislive_delivered_total", "Events handed to the consumer.")
		s.mDropped = r.Counter("rislive_dropped_total", "Events discarded by the drop policy.")
		s.mParseErrors = r.Counter("rislive_parse_errors_total", "Feed lines that failed to decode.")
		s.mReconnects = r.Counter("rislive_reconnects_total", "Feed connection attempts after the first.")
		s.mQueue = r.Gauge("rislive_queue_depth", "Events buffered in the bounded channel.")
		s.mConnected = r.Gauge("rislive_connected", "1 while the feed connection is established.")
		s.mLagMs = r.Gauge("rislive_lag_ms", "Stream-lag watermark: wall clock minus event timestamp, milliseconds.")
		s.mLag = r.Histogram("rislive_lag_seconds", "Stream-lag distribution in seconds.",
			telemetry.ExpBuckets(0.05, 4, 8))
	}
	return s
}

// Events returns the bounded output channel. It is closed when Run or
// RunReader returns.
func (s *Stage) Events() <-chan *Event { return s.out }

// Connected reports whether the feed is currently attached to a source.
func (s *Stage) Connected() bool { return s.connected.Load() }

// setConnected flips the connection state and its telemetry mirror.
func (s *Stage) setConnected(up bool) {
	s.connected.Store(up)
	if s.mConnected != nil {
		if up {
			s.mConnected.Set(1)
		} else {
			s.mConnected.Set(0)
		}
	}
}

// Counters returns a snapshot of the stage's accounting.
func (s *Stage) Counters() Counters {
	// Load the outcome counters before received: every delivered/dropped
	// increment is preceded by that event's received increment, so
	// reading received last guarantees Delivered + Dropped <= Received
	// for a snapshot taken mid-delivery. (Loading received first could
	// transiently report the opposite.)
	delivered := s.delivered.Load()
	dropped := s.dropped.Load()
	parseErrors := s.parseErrors.Load()
	skipped := s.skipped.Load()
	reconnects := s.reconnects.Load()
	return Counters{
		Received:    s.received.Load(),
		Delivered:   delivered,
		Dropped:     dropped,
		ParseErrors: parseErrors,
		Skipped:     skipped,
		Reconnects:  reconnects,
	}
}

// Run streams from the configured URL until ctx is canceled,
// reconnecting on any connection failure with the shared
// capped-exponential-jittered backoff (the same schedule as the
// daemon's peer re-dial loop). The output channel is closed on return.
func (s *Stage) Run(ctx context.Context) error {
	defer close(s.out)
	jit := backoff.NewJitter(s.cfg.Seed)
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := s.connectOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // any disconnect reason leads to the same backoff
		delay := jit.Delay(s.cfg.ReconnectBase, s.cfg.ReconnectMax, attempt)
		attempt++
		s.reconnects.Add(1)
		if s.mReconnects != nil {
			s.mReconnects.Inc()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
}

// connectOnce opens the HTTP stream and ingests it until it breaks.
func (s *Stage) connectOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cfg.URL, nil)
	if err != nil {
		return err
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rislive: feed returned %s", resp.Status)
	}
	s.setConnected(true)
	defer s.setConnected(false)
	return s.ingest(ctx, resp.Body)
}

// RunReader ingests one already-open NDJSON stream (a recorded feed
// file, a test pipe) to EOF, then closes the output channel. No
// reconnect: the stream is all there is.
func (s *Stage) RunReader(ctx context.Context, r io.Reader) error {
	defer close(s.out)
	s.setConnected(true)
	defer s.setConnected(false)
	err := s.ingest(ctx, r)
	if errors.Is(err, io.EOF) {
		return nil
	}
	return err
}

// maxLine bounds one feed line; RIS UPDATE bursts run a few hundred KiB
// at most.
const maxLine = 4 << 20

// ingest decodes lines from r and delivers them under the configured
// policy until the stream or ctx ends.
func (s *Stage) ingest(ctx context.Context, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		// Ingest T0 is stamped before the line decodes, mirroring the
		// wire reader's frame-read instant.
		st := s.cfg.Obs.Start(0)
		ev, err := Decode(line)
		if err != nil {
			s.parseErrors.Add(1)
			if s.mParseErrors != nil {
				s.mParseErrors.Inc()
			}
			continue
		}
		if ev == nil {
			s.skipped.Add(1)
			continue
		}
		ev.Span = s.received.Add(1)
		st.Span = ev.Span
		s.cfg.Obs.Cross(&st, obs.StageDecode)
		ev.Stamp = st
		if s.mReceived != nil {
			s.mReceived.Inc()
		}
		// Stream-lag watermark: wall clock minus the event's feed
		// timestamp. Only meaningful for live feeds (recorded replays
		// report their age, which is its own useful signal).
		if !ev.Time.IsZero() {
			lag := time.Since(ev.Time)
			if lag < 0 {
				lag = 0
			}
			if s.mLagMs != nil {
				s.mLagMs.Set(lag.Milliseconds())
			}
			if s.mLag != nil {
				s.mLag.Observe(lag.Seconds())
			}
		}
		switch s.cfg.Policy {
		case PolicyDrop:
			select {
			case s.out <- ev:
				s.delivered.Add(1)
				if s.mDelivered != nil {
					s.mDelivered.Inc()
				}
			default:
				s.dropped.Add(1)
				if s.mDropped != nil {
					s.mDropped.Inc()
				}
			}
		default: // PolicyBlock
			select {
			case s.out <- ev:
				s.delivered.Add(1)
				if s.mDelivered != nil {
					s.mDelivered.Inc()
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if s.mQueue != nil {
			s.mQueue.Set(int64(len(s.out)))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.EOF
}
