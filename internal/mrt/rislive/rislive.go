// Package rislive ingests a RIS-Live-style streaming JSON feed of BGP
// updates (one JSON envelope per line, as served by RIPE RIS's
// https://ris-live.ripe.net/v1/stream/ endpoint) and turns it into the
// same wire.Update values the rest of the pipeline consumes. It is the
// live counterpart to the package mrt archive reader: a Stage wraps the
// feed in a bounded channel with an explicit backpressure policy and
// reconnects with the shared backoff schedule.
//
// Unlike the archive path this package is not allocation-free —
// encoding/json dominates — and it deliberately sits outside the
// determinism analyzer's scope: reconnect jitter and wall-clock
// timestamps are part of its job.
package rislive

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/astypes"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ASTrans is the RFC 6793 substitute for AS numbers above the 16-bit
// space (mirrors mrt.ASTrans; kept local to avoid the import for one
// constant).
const ASTrans astypes.ASN = 23456

// Event is one decoded UPDATE from the feed. Unlike mrt.Record it owns
// all of its memory: events cross a channel to another goroutine.
type Event struct {
	// Time is the feed's message timestamp.
	Time time.Time
	// Peer is the peer's address as the feed printed it; PeerASN the
	// peer's AS number narrowed into the 16-bit space.
	Peer    string
	PeerASN astypes.ASN
	// Host is the collector that heard the message.
	Host string
	// Span is the event's 1-based ordinal in the stream, assigned by
	// the Stage; zero for events decoded outside one.
	Span uint64
	// Stamp is the event's stage-timing context (ingest instant plus
	// span), set by a Stage configured with an obs recorder; consumers
	// cross the later pipeline stages against it. Zero value is inert.
	Stamp obs.Stamp
	// Update carries the announcement/withdrawal content.
	Update wire.Update
	// Substituted counts AS numbers narrowed to ASTrans in this event;
	// SkippedPrefixes counts non-IPv4 prefixes dropped from it.
	Substituted     int
	SkippedPrefixes int
}

// envelope is the outer RIS-Live JSON framing.
type envelope struct {
	Type string  `json:"type"`
	Data message `json:"data"`
}

// message is the data payload of a ris_message envelope. Fields the
// pipeline does not consume (id, raw, med, …) are left out; unknown
// fields are ignored by encoding/json.
type message struct {
	Timestamp     float64           `json:"timestamp"`
	Peer          string            `json:"peer"`
	PeerASN       string            `json:"peer_asn"`
	Type          string            `json:"type"`
	Host          string            `json:"host"`
	Path          []json.RawMessage `json:"path"`
	Community     [][2]uint32       `json:"community"`
	Origin        string            `json:"origin"`
	Announcements []announcement    `json:"announcements"`
	Withdrawals   []string          `json:"withdrawals"`
}

type announcement struct {
	NextHop  string   `json:"next_hop"`
	Prefixes []string `json:"prefixes"`
}

// Decode parses one line of the feed. It returns (nil, nil) for
// well-formed envelopes the pipeline does not consume (keepalives,
// RIS state messages, OPEN/NOTIFICATION mirrors, pure-IPv6 updates);
// an error only for malformed input.
func Decode(line []byte) (*Event, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("rislive: parse envelope: %w", err)
	}
	if env.Type != "ris_message" || env.Data.Type != "UPDATE" {
		return nil, nil
	}
	m := &env.Data
	ev := &Event{
		Time: time.Unix(int64(m.Timestamp), int64((m.Timestamp-float64(int64(m.Timestamp)))*1e9)).UTC(),
		Peer: m.Peer,
		Host: m.Host,
	}
	if m.PeerASN != "" {
		v, err := strconv.ParseUint(m.PeerASN, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("rislive: peer_asn %q: %w", m.PeerASN, err)
		}
		ev.PeerASN = ev.mapASN(uint32(v))
	}
	if err := ev.decodePath(m.Path); err != nil {
		return nil, err
	}
	for _, c := range m.Community {
		ev.Update.Attrs.Communities = append(ev.Update.Attrs.Communities,
			astypes.NewCommunity(astypes.ASN(c[0]&0xffff), uint16(c[1]&0xffff)))
	}
	switch strings.ToUpper(m.Origin) {
	case "IGP":
		ev.Update.Attrs.HasOrigin, ev.Update.Attrs.Origin = true, wire.OriginIGP
	case "EGP":
		ev.Update.Attrs.HasOrigin, ev.Update.Attrs.Origin = true, wire.OriginEGP
	case "INCOMPLETE":
		ev.Update.Attrs.HasOrigin, ev.Update.Attrs.Origin = true, wire.OriginIncomplete
	case "":
	default:
		return nil, fmt.Errorf("rislive: origin %q", m.Origin)
	}
	for _, a := range m.Announcements {
		if !ev.Update.Attrs.HasNextHop {
			if hop, ok := parseIPv4(a.NextHop); ok {
				ev.Update.Attrs.HasNextHop = true
				ev.Update.Attrs.NextHop = hop
			}
		}
		for _, p := range a.Prefixes {
			pfx, ok, err := parsePrefix(p)
			if err != nil {
				return nil, err
			}
			if !ok {
				ev.SkippedPrefixes++
				continue
			}
			ev.Update.NLRI = append(ev.Update.NLRI, pfx)
		}
	}
	for _, p := range m.Withdrawals {
		pfx, ok, err := parsePrefix(p)
		if err != nil {
			return nil, err
		}
		if !ok {
			ev.SkippedPrefixes++
			continue
		}
		ev.Update.Withdrawn = append(ev.Update.Withdrawn, pfx)
	}
	if len(ev.Update.NLRI) == 0 && len(ev.Update.Withdrawn) == 0 {
		// Everything in the update was IPv6; nothing to feed the
		// IPv4-prefix monitor.
		return nil, nil
	}
	if len(ev.Update.NLRI) > 0 && !ev.Update.Attrs.HasOrigin {
		// RIS omits origin on rare incomplete messages; default rather
		// than drop the announcement.
		ev.Update.Attrs.HasOrigin, ev.Update.Attrs.Origin = true, wire.OriginIncomplete
	}
	return ev, nil
}

// mapASN narrows a 32-bit AS number, counting substitutions on the
// event.
func (ev *Event) mapASN(v uint32) astypes.ASN {
	if v > 0xffff {
		ev.Substituted++
		return ASTrans
	}
	return astypes.ASN(v)
}

// decodePath converts the feed's path array — integers, with nested
// arrays for AS_SETs — into AS_PATH segments: runs of integers become
// SEQUENCE segments, each nested array a SET segment.
func (ev *Event) decodePath(path []json.RawMessage) error {
	var run []astypes.ASN
	flush := func() {
		if len(run) > 0 {
			ev.Update.Attrs.ASPath.Segments = append(ev.Update.Attrs.ASPath.Segments,
				astypes.Segment{Type: astypes.SegSequence, ASNs: run})
			run = nil
		}
	}
	for _, raw := range path {
		trimmed := strings.TrimSpace(string(raw))
		if strings.HasPrefix(trimmed, "[") {
			var set []uint32
			if err := json.Unmarshal(raw, &set); err != nil {
				return fmt.Errorf("rislive: path AS_SET: %w", err)
			}
			flush()
			asns := make([]astypes.ASN, 0, len(set))
			for _, v := range set {
				asns = append(asns, ev.mapASN(v))
			}
			ev.Update.Attrs.ASPath.Segments = append(ev.Update.Attrs.ASPath.Segments,
				astypes.Segment{Type: astypes.SegSet, ASNs: asns})
			continue
		}
		var v uint32
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("rislive: path element %s: %w", trimmed, err)
		}
		run = append(run, ev.mapASN(v))
	}
	flush()
	return nil
}

// parsePrefix parses "a.b.c.d/len". IPv6 prefixes return ok == false
// (skipped, not an error); malformed input errors.
func parsePrefix(s string) (p astypes.Prefix, ok bool, err error) {
	ipStr, lenStr, found := strings.Cut(s, "/")
	if !found {
		return p, false, fmt.Errorf("rislive: prefix %q has no length", s)
	}
	if strings.Contains(ipStr, ":") {
		return p, false, nil // IPv6
	}
	addr, okIP := parseIPv4(ipStr)
	if !okIP {
		return p, false, fmt.Errorf("rislive: prefix %q has a bad address", s)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 || n > 32 {
		return p, false, fmt.Errorf("rislive: prefix %q has a bad length", s)
	}
	if n > 0 {
		addr &= ^uint32(0) << (32 - n)
	} else {
		addr = 0
	}
	pfx, err := astypes.NewPrefix(addr, uint8(n))
	if err != nil {
		return p, false, err
	}
	return pfx, true, nil
}

// parseIPv4 parses a dotted-quad address.
func parseIPv4(s string) (uint32, bool) {
	var addr uint32
	part := 0
	val, digits := 0, 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || val > 255 || part > 3 {
				return 0, false
			}
			addr = addr<<8 | uint32(val)
			part++
			val, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		val = val*10 + int(c-'0')
		digits++
		if digits > 3 {
			return 0, false
		}
	}
	if part != 4 {
		return 0, false
	}
	return addr, true
}
