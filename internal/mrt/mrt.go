// Package mrt reads and writes MRT routing-information archives
// (RFC 6396): the TABLE_DUMP_V2 full-table snapshots and BGP4MP update
// traces published by RouteViews and RIPE RIS collectors. It is the
// internet-scale ingestion layer: real archives hold ~1M-prefix tables
// and millions of daily updates, so the reader follows the wire-codec
// scratch idiom (PR 3) — one reusable record buffer plus flat decode
// arenas — and decodes records with zero steady-state allocations,
// straight into the existing wire/astypes types.
//
// Supported record types:
//
//   - TABLE_DUMP_V2 / PEER_INDEX_TABLE: collector identity and the peer
//     table RIB entries index into.
//   - TABLE_DUMP_V2 / RIB_IPV4_UNICAST: one prefix with its per-peer
//     RIB entries (AS_PATH always 4-byte per RFC 6396 §4.3.4).
//   - BGP4MP and BGP4MP_ET / MESSAGE, MESSAGE_AS4: one raw BGP message
//     exchanged with a peer; UPDATEs are decoded, other types exposed
//     by their wire.MsgType.
//   - BGP4MP and BGP4MP_ET / STATE_CHANGE, STATE_CHANGE_AS4: FSM
//     transitions, exposed as (old, new) state codes.
//
// Everything else (IPv6 RIBs, RIB_GENERIC, geo-peer tables, OSPF, …) is
// skipped and counted, never an error: real archives interleave record
// types freely. Since the repository's AS numbers are the paper-era
// 2-octet kind, 4-byte AS numbers above 65535 are substituted with
// AS_TRANS (23456, RFC 6793) and counted in Stats.
//
// Compressed archives are detected by magic bytes: gzip (RouteViews
// .bz2 archives predate it but RIS uses .gz) and bzip2 both unwrap
// transparently in NewReader.
package mrt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/astypes"
	"repro/internal/wire"
)

// MRT record types and subtypes (RFC 6396 §4).
const (
	TypeTableDumpV2 uint16 = 13
	TypeBGP4MP      uint16 = 16
	TypeBGP4MPET    uint16 = 17

	// TABLE_DUMP_V2 subtypes.
	SubPeerIndexTable uint16 = 1
	SubRIBIPv4Unicast uint16 = 2
	SubRIBIPv6Unicast uint16 = 4

	// BGP4MP subtypes.
	SubStateChange    uint16 = 0
	SubMessage        uint16 = 1
	SubMessageAS4     uint16 = 4
	SubStateChangeAS4 uint16 = 5
)

// headerLen is the MRT common header: timestamp(4) type(2) subtype(2)
// length(4).
const headerLen = 12

// MaxRecordLen bounds one record body. RouteViews RIB records with
// hundreds of peer entries reach a few hundred KiB; 16 MiB is far above
// any observed record and keeps a corrupt (or adversarial) length field
// from ballooning the record buffer.
const MaxRecordLen = 1 << 24

// ASTrans is the RFC 6793 2-octet placeholder substituted for 4-byte AS
// numbers that do not fit the paper-era 16-bit ASN space.
const ASTrans astypes.ASN = 23456

// Structural decode failures; every error returned by Reader.Next wraps
// one of these inside a *RecordError carrying the record offset.
var (
	// ErrTruncatedHeader: the stream ended inside a record header.
	ErrTruncatedHeader = errors.New("truncated MRT header")
	// ErrTruncatedBody: the stream ended before the declared length.
	ErrTruncatedBody = errors.New("truncated MRT record body")
	// ErrBadLength: the declared record length exceeds MaxRecordLen.
	ErrBadLength = errors.New("MRT record length out of range")
	// ErrBadRecord: the record body does not parse as its declared
	// type/subtype (truncated fields, bad prefix lengths, zero-length
	// RIB entries, malformed attributes, …).
	ErrBadRecord = errors.New("malformed MRT record")
	// ErrNoPeerIndex: a RIB record arrived before any PEER_INDEX_TABLE.
	ErrNoPeerIndex = errors.New("RIB record before PEER_INDEX_TABLE")
	// ErrBadPeerIndex: a RIB entry references a peer index outside the
	// current peer table.
	ErrBadPeerIndex = errors.New("RIB entry references unknown peer index")
)

// RecordError is a decode failure annotated with the byte offset and
// ordinal of the record it occurred in, so a bad record in a
// multi-gigabyte archive can be located exactly.
type RecordError struct {
	// Offset is the byte offset of the record's header in the
	// (decompressed) stream.
	Offset int64
	// Span is the record's 1-based ordinal.
	Span uint64
	// Type and Subtype are the record's declared type codes (zero when
	// the header itself was unreadable).
	Type, Subtype uint16
	// Err wraps the structural cause (one of the package sentinels).
	Err error
}

func (e *RecordError) Error() string {
	return fmt.Sprintf("mrt: record %d (type %d subtype %d) at offset %d: %v",
		e.Span, e.Type, e.Subtype, e.Offset, e.Err)
}

func (e *RecordError) Unwrap() error { return e.Err }

// IsTerminal reports whether err ends the stream: the record framing is
// lost (truncated header or body, out-of-range length), so calling Next
// again returns the same error. Non-terminal record errors (malformed
// bodies) consume their record fully and Next may be called again to
// skip past them.
func IsTerminal(err error) bool {
	return errors.Is(err, ErrTruncatedHeader) ||
		errors.Is(err, ErrTruncatedBody) ||
		errors.Is(err, ErrBadLength)
}

// RecordKind classifies a decoded record.
type RecordKind uint8

// Record kinds.
const (
	// KindSkipped: a record type/subtype outside the supported set; the
	// body was consumed and counted, nothing was decoded.
	KindSkipped RecordKind = iota
	// KindPeerIndex: a PEER_INDEX_TABLE; the reader's peer table was
	// replaced.
	KindPeerIndex
	// KindRIB: one RIB_IPV4_UNICAST prefix with its entries.
	KindRIB
	// KindMessage: one BGP4MP(_ET) MESSAGE(_AS4).
	KindMessage
	// KindStateChange: one BGP4MP(_ET) STATE_CHANGE(_AS4).
	KindStateChange
)

func (k RecordKind) String() string {
	switch k {
	case KindSkipped:
		return "skipped"
	case KindPeerIndex:
		return "peer-index"
	case KindRIB:
		return "rib"
	case KindMessage:
		return "message"
	case KindStateChange:
		return "state-change"
	default:
		return "unknown"
	}
}

// Peer is one PEER_INDEX_TABLE entry.
type Peer struct {
	// BGPID is the peer's BGP identifier.
	BGPID uint32
	// IP is the peer's IPv4 address (zero for IPv6 peers, which keep
	// their slot in the index but expose no address here).
	IP uint32
	// IPv6 marks peers whose address was 16 bytes.
	IPv6 bool
	// AS is the peer's AS number exactly as encoded (2 or 4 bytes wide
	// on the wire; always full width here).
	AS uint32
}

// ASN returns the peer's AS number in the 16-bit space, substituting
// ASTrans for values that do not fit.
func (p Peer) ASN() astypes.ASN {
	if p.AS > 0xffff {
		return ASTrans
	}
	return astypes.ASN(p.AS)
}

// RIBEntry is one peer's route for a RIB record's prefix.
type RIBEntry struct {
	// PeerIndex indexes the current peer table; PeerAS is the resolved
	// (AS_TRANS-substituted) peer AS.
	PeerIndex uint16
	PeerAS    astypes.ASN
	// Originated is the route's origination time (Unix seconds).
	Originated uint32
	// Origin is the ORIGIN attribute value.
	Origin wire.OriginCode
	// Path is the AS_PATH, 4-byte AS numbers substituted into the
	// 16-bit space. Aliases reader scratch: valid until the next Next.
	Path astypes.ASPath
	// NextHop is the NEXT_HOP attribute (zero when absent).
	NextHop uint32
	// LocalPref is the LOCAL_PREF attribute when HasLocalPref.
	LocalPref    uint32
	HasLocalPref bool
	// Communities aliases reader scratch: valid until the next Next.
	Communities []astypes.Community
}

// Record is one decoded MRT record. Records returned by Reader.Next
// alias the reader's scratch storage and are valid only until the next
// Next call; callers that retain paths or communities must copy them
// (monitor/rib ingestion already does).
type Record struct {
	// Offset is the byte offset of the record header in the
	// (decompressed) stream; Span its 1-based ordinal. Span is the ID
	// replayed announcements carry into alarm forensics.
	Offset int64
	Span   uint64
	// Time is the record timestamp (microsecond-extended for BGP4MP_ET).
	Time time.Time
	// Type and Subtype are the raw MRT codes.
	Type, Subtype uint16
	Kind          RecordKind

	// KindPeerIndex fields.
	CollectorID uint32
	ViewName    string
	Peers       []Peer

	// KindRIB fields.
	Seq     uint32
	Prefix  astypes.Prefix
	Entries []RIBEntry

	// KindMessage / KindStateChange fields.
	PeerAS  astypes.ASN
	LocalAS astypes.ASN
	// MsgType is the embedded BGP message type (KindMessage).
	MsgType wire.MsgType
	// Update is the decoded body for UPDATE messages, nil otherwise.
	// Aliases reader scratch: valid until the next Next.
	Update *wire.Update
	// OldState and NewState are BGP FSM codes (KindStateChange).
	OldState, NewState uint16
}

// Stats counts what a Reader has ingested.
type Stats struct {
	// Records successfully decoded (including skipped ones).
	Records uint64
	// Bytes of MRT framing consumed (headers plus bodies of every fully
	// read record, decompressed) — the replay-progress denominator's
	// numerator side.
	Bytes uint64
	// RIBPrefixes and RIBEntries count RIB_IPV4_UNICAST content.
	RIBPrefixes uint64
	RIBEntries  uint64
	// Updates counts decoded UPDATE messages; Messages all BGP4MP
	// message records (including KEEPALIVE/OPEN/NOTIFICATION).
	Updates  uint64
	Messages uint64
	// StateChanges counts FSM transition records.
	StateChanges uint64
	// Skipped counts unsupported record types/subtypes.
	Skipped uint64
	// SkippedAttrs counts path attributes outside the decoded set
	// (MED, MP_REACH_NLRI, AS4_PATH, …) that were passed over.
	SkippedAttrs uint64
	// AS4Substituted counts 4-byte AS numbers replaced with ASTrans.
	AS4Substituted uint64
}
