// Package stats provides the small set of descriptive statistics used
// by the measurement pipeline and the experiment harness: mean, median,
// percentiles, standard deviation, and integer histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return Percentile(xs, 50)
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MedianInts is Median over integer samples.
func MedianInts(xs []int) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Median(fs)
}

// Histogram counts integer-valued observations into unit bins.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v, n int) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Count returns the number of observations with value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of observations with value v, in [0,1].
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Bin is one (value, count) histogram entry.
type Bin struct {
	Value int
	Count int
}

// Bins returns all non-empty bins in ascending value order.
func (h *Histogram) Bins() []Bin {
	out := make([]Bin, 0, len(h.counts))
	for v, c := range h.counts {
		out = append(out, Bin{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// CumulativeAtMost returns the number of observations with value <= v.
func (h *Histogram) CumulativeAtMost(v int) int {
	n := 0
	for val, c := range h.counts {
		if val <= v {
			n += c
		}
	}
	return n
}

// String renders the histogram compactly for logs.
func (h *Histogram) String() string {
	s := fmt.Sprintf("histogram(total=%d)", h.total)
	for _, b := range h.Bins() {
		s += fmt.Sprintf(" %d:%d", b.Value, b.Count)
	}
	return s
}
