package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		give []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		if got := Mean(tt.give); got != tt.want {
			t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{3}) != 0 {
		t.Error("degenerate StdDev should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMedianAndPercentile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Median(xs); got != 2 {
		t.Errorf("Median = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even Median = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Percentile must not reorder the caller's slice.
	orig := []float64{9, 1, 5}
	Percentile(orig, 50)
	if orig[0] != 9 {
		t.Error("Percentile mutated its argument")
	}
}

func TestPercentileMonotonicQuick(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological float inputs
			}
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundsQuick(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		pp := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pp)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v >= sorted[0] && v <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianInts(t *testing.T) {
	if got := MedianInts([]int{5, 1, 3}); got != 3 {
		t.Errorf("MedianInts = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.AddN(7, 4)
	h.AddN(9, 0)  // no-op
	h.AddN(9, -2) // no-op
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(1) != 2 || h.Count(7) != 4 || h.Count(2) != 0 {
		t.Error("counts wrong")
	}
	if got := h.Fraction(1); math.Abs(got-2.0/7) > 1e-12 {
		t.Errorf("Fraction = %v", got)
	}
	bins := h.Bins()
	if len(bins) != 3 || bins[0].Value != 1 || bins[2].Value != 7 {
		t.Errorf("Bins = %v", bins)
	}
	if h.CumulativeAtMost(3) != 3 {
		t.Errorf("CumulativeAtMost(3) = %d", h.CumulativeAtMost(3))
	}
	if got := NewHistogram().Fraction(1); got != 0 {
		t.Errorf("empty Fraction = %v", got)
	}
	if s := h.String(); s == "" {
		t.Error("String empty")
	}
}

func TestHistogramInvariantsQuick(t *testing.T) {
	f := func(values []int8) bool {
		h := NewHistogram()
		for _, v := range values {
			h.Add(int(v))
		}
		total := 0
		for _, b := range h.Bins() {
			total += b.Count
		}
		return total == h.Total() && h.Total() == len(values) &&
			h.CumulativeAtMost(127) == len(values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
