// Package mibcheck implements the management application sketched in
// §4.2: "If the router is equipped to support the new BGP MIB, one
// could also run a management application to get all MOAS List through
// the MIB interface and check the MOAS List consistency." It polls the
// MIB HTTP endpoints of any number of speakers (internal/speaker's
// ServeHTTP), collects every router's per-prefix MOAS list, and
// cross-checks them — across routers, not just across announcements at
// one router — flagging any prefix whose lists disagree.
package mibcheck

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/speaker"
)

// RouterView is one router's per-prefix MOAS state as read from its
// MIB.
type RouterView struct {
	Source string // endpoint URL or operator-assigned name
	AS     astypes.ASN
	// Lists maps prefix to the MOAS list on the router's best route.
	Lists map[astypes.Prefix]core.List
	// Implicit marks prefixes whose list came from the implicit rule.
	Implicit map[astypes.Prefix]bool
	// Alarms the router itself has raised.
	RouterAlarms int
}

// Finding is one cross-router inconsistency.
type Finding struct {
	Prefix astypes.Prefix
	// Views lists each disagreeing (source, list) pair, sorted by
	// source for determinism.
	Views []SourceList
}

// SourceList pairs a router with the list it holds.
type SourceList struct {
	Source string
	List   core.List
}

// Client polls MIB endpoints. The zero value is not usable; use New.
type Client struct {
	httpClient *http.Client
}

// Option configures a Client.
type Option interface {
	apply(*Client)
}

type httpClientOption struct{ c *http.Client }

func (o httpClientOption) apply(c *Client) { c.httpClient = o.c }

// WithHTTPClient overrides the HTTP client (tests, timeouts).
func WithHTTPClient(hc *http.Client) Option {
	return httpClientOption{c: hc}
}

// New builds a Client with a 5-second default timeout.
func New(opts ...Option) *Client {
	c := &Client{httpClient: &http.Client{Timeout: 5 * time.Second}}
	for _, o := range opts {
		o.apply(c)
	}
	return c
}

// Fetch reads one router's MIB endpoint.
func (c *Client) Fetch(url string) (*RouterView, error) {
	resp, err := c.httpClient.Get(url)
	if err != nil {
		return nil, fmt.Errorf("mibcheck: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("mibcheck: fetch %s: status %s", url, resp.Status)
	}
	var mib speaker.MIB
	if err := json.NewDecoder(resp.Body).Decode(&mib); err != nil {
		return nil, fmt.Errorf("mibcheck: decode %s: %w", url, err)
	}
	return viewFromMIB(url, mib)
}

func viewFromMIB(source string, mib speaker.MIB) (*RouterView, error) {
	v := &RouterView{
		Source:       source,
		AS:           mib.AS,
		Lists:        make(map[astypes.Prefix]core.List, len(mib.Routes)),
		Implicit:     make(map[astypes.Prefix]bool),
		RouterAlarms: len(mib.Alarms),
	}
	for _, r := range mib.Routes {
		prefix, err := astypes.ParsePrefix(r.Prefix)
		if err != nil {
			return nil, fmt.Errorf("mibcheck: %s: %w", source, err)
		}
		origins := make([]astypes.ASN, 0, len(r.MOASList))
		for _, s := range r.MOASList {
			asn, err := astypes.ParseASN(s)
			if err != nil {
				return nil, fmt.Errorf("mibcheck: %s: %w", source, err)
			}
			origins = append(origins, asn)
		}
		v.Lists[prefix] = core.NewList(origins...)
		if r.Implicit {
			v.Implicit[prefix] = true
		}
	}
	return v, nil
}

// CrossCheck compares the per-prefix MOAS lists across router views and
// returns one finding per prefix where any two routers disagree —
// exactly the §4.2 consistency predicate, applied fleet-wide.
func CrossCheck(views []*RouterView) []Finding {
	type entry struct {
		source string
		list   core.List
	}
	byPrefix := make(map[astypes.Prefix][]entry)
	for _, v := range views {
		for prefix, list := range v.Lists {
			byPrefix[prefix] = append(byPrefix[prefix], entry{source: v.Source, list: list})
		}
	}
	var findings []Finding
	for prefix, entries := range byPrefix {
		inconsistent := false
		for i := 1; i < len(entries); i++ {
			if !entries[i].list.Equal(entries[0].list) {
				inconsistent = true
				break
			}
		}
		if !inconsistent {
			continue
		}
		f := Finding{Prefix: prefix}
		// Report one representative per distinct list.
		seen := make([]core.List, 0, 2)
		for _, e := range entries {
			dup := false
			for _, l := range seen {
				if l.Equal(e.list) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = append(seen, e.list)
			f.Views = append(f.Views, SourceList{Source: e.source, List: e.list})
		}
		sort.Slice(f.Views, func(i, j int) bool { return f.Views[i].Source < f.Views[j].Source })
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		return findings[i].Prefix.Compare(findings[j].Prefix) < 0
	})
	return findings
}

// Sweep fetches every endpoint and cross-checks the results. Endpoints
// that fail to fetch are reported in errs but do not abort the sweep.
func (c *Client) Sweep(urls []string) (findings []Finding, views []*RouterView, errs []error) {
	for _, url := range urls {
		v, err := c.Fetch(url)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		views = append(views, v)
	}
	return CrossCheck(views), views, errs
}
