package mibcheck

import (
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/speaker"
)

var prefix = astypes.MustPrefix(0x83b30000, 16)

func TestCrossCheckFlagsDisagreement(t *testing.T) {
	a := &RouterView{
		Source: "r1",
		Lists: map[astypes.Prefix]core.List{
			prefix: core.NewList(4, 226),
		},
	}
	b := &RouterView{
		Source: "r2",
		Lists: map[astypes.Prefix]core.List{
			prefix: core.NewList(52),
		},
	}
	c := &RouterView{
		Source: "r3",
		Lists: map[astypes.Prefix]core.List{
			prefix: core.NewList(226, 4), // same set as r1, other order
		},
	}
	findings := CrossCheck([]*RouterView{a, b, c})
	if len(findings) != 1 {
		t.Fatalf("findings = %+v", findings)
	}
	f := findings[0]
	if f.Prefix != prefix || len(f.Views) != 2 {
		t.Errorf("finding = %+v (want 2 distinct lists)", f)
	}
}

func TestCrossCheckConsistentIsQuiet(t *testing.T) {
	mk := func(src string) *RouterView {
		return &RouterView{
			Source: src,
			Lists:  map[astypes.Prefix]core.List{prefix: core.NewList(4, 226)},
		}
	}
	if got := CrossCheck([]*RouterView{mk("a"), mk("b")}); len(got) != 0 {
		t.Errorf("consistent views flagged: %+v", got)
	}
	if got := CrossCheck(nil); len(got) != 0 {
		t.Errorf("empty views flagged: %+v", got)
	}
}

// TestSweepAgainstLiveSpeakers runs the full management loop: two live
// speakers with MIB endpoints; one sees only the valid route, the other
// was fed the hijack — the fleet-wide cross-check catches what neither
// router could see alone.
func TestSweepAgainstLiveSpeakers(t *testing.T) {
	newSpk := func(asn astypes.ASN) *speaker.Speaker {
		s, err := speaker.New(speaker.Config{AS: asn, RouterID: uint32(asn)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	link := func(a, b *speaker.Speaker) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a.Listen(ln)
		if err := b.Connect(ln.Addr().String(), a.AS()); err != nil {
			t.Fatal(err)
		}
	}

	origin := newSpk(4)
	attacker := newSpk(52)
	r1 := newSpk(701) // hears only the origin
	r2 := newSpk(702) // hears only the attacker
	link(origin, r1)
	link(attacker, r2)

	origin.Originate(prefix, core.List{})
	attacker.Originate(prefix, core.List{})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r1.Table().Best(prefix) != nil && r2.Table().Best(prefix) != nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv1 := httptest.NewServer(r1)
	defer srv1.Close()
	srv2 := httptest.NewServer(r2)
	defer srv2.Close()

	client := New()
	findings, views, errs := client.Sweep([]string{srv1.URL, srv2.URL})
	if len(errs) != 0 {
		t.Fatalf("sweep errors: %v", errs)
	}
	if len(views) != 2 {
		t.Fatalf("views = %d", len(views))
	}
	if len(findings) != 1 || findings[0].Prefix != prefix {
		t.Fatalf("findings = %+v", findings)
	}
	// Neither router alarmed on its own (each saw a single consistent
	// announcement); only the fleet-wide view exposes the conflict.
	for _, v := range views {
		if v.RouterAlarms != 0 {
			t.Errorf("router %s alarmed alone: %d", v.Source, v.RouterAlarms)
		}
	}
}

func TestSweepToleratesDeadEndpoints(t *testing.T) {
	client := New()
	findings, views, errs := client.Sweep([]string{"http://127.0.0.1:1/mib"})
	if len(errs) != 1 || len(views) != 0 || len(findings) != 0 {
		t.Errorf("sweep = %v / %v / %v", findings, views, errs)
	}
}
