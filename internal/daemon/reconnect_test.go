package daemon

import (
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/backoff"
)

func TestConfigValidatesNewFields(t *testing.T) {
	bad := []Config{
		{AS: 1, ImportDeny: []string{"banana"}},
		{AS: 1, ListEncoding: "morse"},
	}
	for _, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	good := Config{
		AS:               1,
		ImportDeny:       []string{"10.0.0.0/8"},
		ListEncoding:     "attribute",
		ReconnectSeconds: 3,
	}
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestConfigValidatesReconnectBounds(t *testing.T) {
	bad := []Config{
		{AS: 1, ReconnectSeconds: -1},
		{AS: 1, ReconnectMaxSeconds: -1},
		{AS: 1, ReconnectSeconds: 10, ReconnectMaxSeconds: 3},
	}
	for _, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	good := Config{AS: 1, ReconnectSeconds: 2, ReconnectMaxSeconds: 30}
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestReconnectDelaySchedule(t *testing.T) {
	const (
		base = time.Second
		max  = 8 * time.Second
	)
	rng := backoff.NewJitter(1)
	// Every attempt's delay must land in [d/2, d] where d doubles from
	// base until the cap; sample repeatedly to exercise the jitter.
	for attempt := 0; attempt < 10; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 50; i++ {
			got := reconnectDelay(base, max, attempt, rng)
			if got < want/2 || got > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want/2, want)
			}
		}
	}
	// The jitter must actually vary (not return a constant).
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[reconnectDelay(base, max, 0, rng)] = true
	}
	if len(seen) < 2 {
		t.Error("reconnectDelay produced no jitter")
	}
	// Degenerate inputs.
	if reconnectDelay(0, max, 3, rng) != 0 {
		t.Error("zero base should disable the delay")
	}
	if got := reconnectDelay(base, 0, 4, rng); got < base/2 || got > base {
		t.Errorf("cap below base should clamp to base, got %v", got)
	}
}

func TestDaemonReconnect(t *testing.T) {
	addr := freePort(t)
	origin, err := Build(Config{
		AS:        4,
		RouterID:  4,
		Listen:    []string{addr},
		Originate: []OriginateConfig{{Prefix: "131.179.0.0/16"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	client, err := Build(Config{
		AS:               701,
		RouterID:         701,
		Peers:            []PeerConfig{{Addr: addr, AS: 4}},
		ReconnectSeconds: 1,
	})
	if err != nil {
		origin.Close()
		t.Fatal(err)
	}
	defer client.Close()

	prefix := astypes.MustPrefix(0x83b30000, 16)
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) != nil }, "initial route")

	// The origin goes away; the client loses the session and its routes.
	if err := origin.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) == nil }, "route flushed")

	// The origin comes back on the same address; the client re-dials.
	origin2, err := Build(Config{
		AS:        4,
		RouterID:  4,
		Listen:    []string{addr},
		Originate: []OriginateConfig{{Prefix: "131.179.0.0/16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer origin2.Close()
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) != nil }, "route after reconnect")
}

func TestDaemonAttributeEncodingEndToEnd(t *testing.T) {
	addr := freePort(t)
	origin, err := Build(Config{
		AS:           4,
		RouterID:     4,
		Listen:       []string{addr},
		ListEncoding: "attribute",
		Originate: []OriginateConfig{
			{Prefix: "131.179.0.0/16", MOASList: []uint32{4, 226}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	client, err := Build(Config{
		AS:       701,
		RouterID: 701,
		Peers:    []PeerConfig{{Addr: addr, AS: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	prefix := astypes.MustPrefix(0x83b30000, 16)
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) != nil }, "route")
	best := client.Speaker.Table().Best(prefix)
	if len(best.Unknown) != 1 {
		t.Errorf("attribute-encoded list missing: %+v", best.Unknown)
	}
	if len(best.Communities) != 0 {
		t.Errorf("unexpected communities: %v", best.Communities)
	}
}
