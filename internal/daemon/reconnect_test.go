package daemon

import (
	"testing"

	"repro/internal/astypes"
)

func TestConfigValidatesNewFields(t *testing.T) {
	bad := []Config{
		{AS: 1, ImportDeny: []string{"banana"}},
		{AS: 1, ListEncoding: "morse"},
	}
	for _, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	good := Config{
		AS:               1,
		ImportDeny:       []string{"10.0.0.0/8"},
		ListEncoding:     "attribute",
		ReconnectSeconds: 3,
	}
	if err := good.validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDaemonReconnect(t *testing.T) {
	addr := freePort(t)
	origin, err := Build(Config{
		AS:        4,
		RouterID:  4,
		Listen:    []string{addr},
		Originate: []OriginateConfig{{Prefix: "131.179.0.0/16"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	client, err := Build(Config{
		AS:               701,
		RouterID:         701,
		Peers:            []PeerConfig{{Addr: addr, AS: 4}},
		ReconnectSeconds: 1,
	})
	if err != nil {
		origin.Close()
		t.Fatal(err)
	}
	defer client.Close()

	prefix := astypes.MustPrefix(0x83b30000, 16)
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) != nil }, "initial route")

	// The origin goes away; the client loses the session and its routes.
	if err := origin.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) == nil }, "route flushed")

	// The origin comes back on the same address; the client re-dials.
	origin2, err := Build(Config{
		AS:        4,
		RouterID:  4,
		Listen:    []string{addr},
		Originate: []OriginateConfig{{Prefix: "131.179.0.0/16"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer origin2.Close()
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) != nil }, "route after reconnect")
}

func TestDaemonAttributeEncodingEndToEnd(t *testing.T) {
	addr := freePort(t)
	origin, err := Build(Config{
		AS:           4,
		RouterID:     4,
		Listen:       []string{addr},
		ListEncoding: "attribute",
		Originate: []OriginateConfig{
			{Prefix: "131.179.0.0/16", MOASList: []uint16{4, 226}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	client, err := Build(Config{
		AS:       701,
		RouterID: 701,
		Peers:    []PeerConfig{{Addr: addr, AS: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	prefix := astypes.MustPrefix(0x83b30000, 16)
	waitFor(t, func() bool { return client.Speaker.Table().Best(prefix) != nil }, "route")
	best := client.Speaker.Table().Best(prefix)
	if len(best.Unknown) != 1 {
		t.Errorf("attribute-encoded list missing: %+v", best.Unknown)
	}
	if len(best.Communities) != 0 {
		t.Errorf("unexpected communities: %v", best.Communities)
	}
}
