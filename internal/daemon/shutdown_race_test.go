package daemon

import (
	"sync"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/backoff"
	"repro/internal/speaker"
	"repro/internal/telemetry"
)

// TestPeerDownCloseRace hammers the peerDown/Close window: peerDown runs
// on a session goroutine, so its wg.Add must not race Close's wg.Wait.
// Run under -race.
func TestPeerDownCloseRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		s, err := speaker.New(speaker.Config{AS: 1, RouterID: 1})
		if err != nil {
			t.Fatalf("new speaker: %v", err)
		}
		reg := telemetry.NewRegistry("moas")
		d := &Daemon{
			Speaker: s,
			reg:     reg,
			// An address nothing listens on: redial attempts fail fast
			// until Close stops them.
			peerAddrs:         map[astypes.ASN]string{7: "127.0.0.1:1"},
			reconnect:         time.Millisecond,
			jitter:            backoff.NewJitter(1),
			stop:              make(chan struct{}),
			peerUp:            reg.Counter("daemon_peer_up_total", "t"),
			peerDownCtr:       reg.Counter("daemon_peer_down_total", "t"),
			reconnectAttempts: reg.Counter("daemon_reconnect_attempts_total", "t"),
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			d.peerDown(7)
		}()
		go func() {
			defer wg.Done()
			d.Close()
		}()
		wg.Wait()
		d.Close()
	}
}
