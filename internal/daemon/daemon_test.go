package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/astypes"
	"repro/internal/speaker"
)

func TestLoadValidation(t *testing.T) {
	tests := []struct {
		name    string
		give    string
		wantErr bool
	}{
		{name: "minimal", give: `{"as": 4}`},
		{name: "full", give: `{
			"as": 4, "routerID": 4, "validation": "drop",
			"originate": [{"prefix": "10.0.0.0/8", "moasList": [4, 226]}],
			"aggregates": [{"prefix": "10.0.0.0/8", "summaryOnly": true}],
			"moasrr": [{"prefix": "10.0.0.0/8", "origins": [4]}]
		}`},
		{name: "missing AS", give: `{"validation": "off"}`, wantErr: true},
		{name: "bad validation", give: `{"as": 4, "validation": "maybe"}`, wantErr: true},
		{name: "bad prefix", give: `{"as": 4, "originate": [{"prefix": "banana"}]}`, wantErr: true},
		{name: "bad aggregate", give: `{"as": 4, "aggregates": [{"prefix": "x"}]}`, wantErr: true},
		{name: "empty moasrr origins", give: `{"as": 4, "moasrr": [{"prefix": "10.0.0.0/8", "origins": []}]}`, wantErr: true},
		{name: "unknown field", give: `{"as": 4, "bogus": 1}`, wantErr: true},
		{name: "not json", give: `as = 4`, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tt.give))
			if (err != nil) != tt.wantErr {
				t.Errorf("Load error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// freePort grabs an ephemeral port and releases it for the daemon to
// re-bind (small race, acceptable in tests).
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestTwoDaemonsDetectHijack(t *testing.T) {
	victimAddr := freePort(t)

	// Daemon 1: the true origin, listening.
	origin, err := Build(Config{
		AS:       4,
		RouterID: 4,
		Listen:   []string{victimAddr},
		Originate: []OriginateConfig{
			{Prefix: "131.179.0.0/16"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()

	// Daemon 2: a validating transit peered with the origin, with the
	// MOASRR record for the victim prefix and a MIB endpoint.
	transit, err := Build(Config{
		AS:         701,
		RouterID:   701,
		Validation: "drop",
		MIBAddr:    "127.0.0.1:0",
		Peers:      []PeerConfig{{Addr: victimAddr, AS: 4}},
		MOASRR: []MOASRRConfig{
			{Prefix: "131.179.0.0/16", Origins: []uint32{4}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer transit.Close()

	prefix := astypes.MustPrefix(0x83b30000, 16)
	waitFor(t, func() bool { return transit.Speaker.Table().Best(prefix) != nil }, "route at transit")

	// A third, attacking daemon peers with the transit and hijacks.
	transitAddr := freePort(t)
	ln, err := net.Listen("tcp", transitAddr)
	if err != nil {
		t.Fatal(err)
	}
	transit.Speaker.Listen(ln)
	attacker, err := Build(Config{
		AS:       52,
		RouterID: 52,
		Peers:    []PeerConfig{{Addr: transitAddr, AS: 701}},
		Originate: []OriginateConfig{
			{Prefix: "131.179.0.0/16"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()

	waitFor(t, func() bool { return len(transit.Speaker.Alarms()) > 0 }, "alarm at transit")
	best := transit.Speaker.Table().Best(prefix)
	if best == nil || best.OriginAS() != 4 {
		t.Errorf("transit best = %+v, want origin 4", best)
	}

	// The MIB endpoint reports the alarm.
	resp, err := http.Get(fmt.Sprintf("http://%s/mib", transit.MIBAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mib speaker.MIB
	if err := json.NewDecoder(resp.Body).Decode(&mib); err != nil {
		t.Fatal(err)
	}
	if mib.AS != 701 || len(mib.Alarms) == 0 {
		t.Errorf("MIB over HTTP = %+v", mib)
	}
}

func TestBuildRejectsBadPeerAddr(t *testing.T) {
	_, err := Build(Config{
		AS:    4,
		Peers: []PeerConfig{{Addr: "127.0.0.1:1", AS: 5}},
	})
	if err == nil {
		t.Fatal("dial to a dead port should fail Build")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/does/not/exist.json"); err == nil {
		t.Error("missing config accepted")
	}
}

func TestBuildWithMIBAndAggregates(t *testing.T) {
	d, err := Build(Config{
		AS:       4,
		RouterID: 4,
		MIBAddr:  "127.0.0.1:0",
		Originate: []OriginateConfig{
			{Prefix: "10.1.0.0/16"},
			{Prefix: "10.2.0.0/16"},
		},
		Aggregates: []AggregateConfig{
			{Prefix: "10.0.0.0/8", SummaryOnly: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.MIBAddr() == "" {
		t.Fatal("MIB address missing")
	}
	aggs := d.Speaker.Aggregates()
	if len(aggs) != 1 || !aggs[0].Active || !aggs[0].SummaryOnly {
		t.Errorf("aggregates = %+v", aggs)
	}
	prefix := astypes.MustPrefix(0x0a000000, 8)
	if d.Speaker.Table().Best(prefix) == nil {
		t.Error("aggregate not originated")
	}
	// Double Close is safe.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsBadListenAddr(t *testing.T) {
	if _, err := Build(Config{AS: 4, Listen: []string{"300.1.1.1:bad"}}); err == nil {
		t.Error("bad listen address accepted")
	}
	if _, err := Build(Config{AS: 4, MIBAddr: "300.1.1.1:bad"}); err == nil {
		t.Error("bad MIB address accepted")
	}
}
