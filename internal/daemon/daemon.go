// Package daemon assembles a deployable MOAS-validating BGP speaker
// from a declarative JSON configuration: peering sessions, originated
// prefixes with their MOAS lists, route aggregates, a local MOASRR
// database for alarm resolution, and an optional HTTP endpoint serving
// the §4.2 MIB view. cmd/moas-speaker is a thin wrapper around this
// package.
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/astypes"
	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/dnsval"
	"repro/internal/obs"
	"repro/internal/rpki"
	"repro/internal/speaker"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config is the on-disk daemon configuration.
type Config struct {
	// AS and RouterID identify the speaker.
	AS       uint32 `json:"as"`
	RouterID uint32 `json:"routerID"`
	// Validation is "off", "alarm" or "drop".
	Validation string `json:"validation"`
	// HoldTimeSeconds for sessions (0 selects the default).
	HoldTimeSeconds int `json:"holdTimeSeconds"`
	// Listen addresses accept inbound peerings ("host:port").
	Listen []string `json:"listen"`
	// MIBAddr, if set, serves the MIB JSON over HTTP.
	MIBAddr string `json:"mibAddr"`
	// MetricsAddr, if set, serves the admin endpoint: /metrics
	// (Prometheus text or JSON), /healthz, and /debug/mib.
	MetricsAddr string `json:"metricsAddr"`
	// TraceEvents, when nonzero, enables the flight recorder with a ring
	// of (about) that many events; /debug/trace and /debug/alarms appear
	// on the admin endpoint. Sizes round up to a power of two.
	TraceEvents int `json:"traceEvents"`
	// Pprof mounts net/http/pprof under /debug/pprof/ on the admin
	// endpoint.
	Pprof bool `json:"pprof"`
	// Peers to dial.
	Peers []PeerConfig `json:"peers"`
	// Originate lists locally announced prefixes.
	Originate []OriginateConfig `json:"originate"`
	// Aggregates configures route aggregation.
	Aggregates []AggregateConfig `json:"aggregates"`
	// MOASRR seeds the local origin-authorization database used to
	// resolve alarms under "drop" validation.
	MOASRR []MOASRRConfig `json:"moasrr"`
	// ImportDeny lists prefixes (and their more-specifics) rejected on
	// import — bogon filtering.
	ImportDeny []string `json:"importDeny"`
	// ListEncoding is "communities" (default) or "attribute".
	ListEncoding string `json:"listEncoding"`
	// ReconnectSeconds, when nonzero, re-dials configured peers whose
	// sessions drop. It is the base of a capped exponential backoff
	// with jitter: attempt n waits between 2ⁿ·base/2 and 2ⁿ·base.
	ReconnectSeconds int `json:"reconnectSeconds"`
	// ReconnectMaxSeconds caps the backoff; zero selects 16× the base.
	ReconnectMaxSeconds int `json:"reconnectMaxSeconds"`
	// ROAFile seeds the RPKI validated-ROA store from a text file
	// (prefix=origin[@maxlen],... — see internal/rpki.Parse). Any ROA
	// source turns on ROV cross-validation of MOAS alarms.
	ROAFile string `json:"roaFile"`
	// ROAs seeds the store from inline records.
	ROAs []ROAConfig `json:"roas"`
	// RTRAddr, if set, keeps the store synchronized from an RTR-style
	// cache server ("host:port") with the daemon's reconnect backoff.
	RTRAddr string `json:"rtrAddr"`
}

// PeerConfig is one outbound peering.
type PeerConfig struct {
	Addr string `json:"addr"`
	AS   uint32 `json:"as"`
}

// OriginateConfig is one locally originated prefix.
type OriginateConfig struct {
	Prefix string `json:"prefix"`
	// MOASList is the set of entitled origins; empty means implicit
	// (this AS only).
	MOASList []uint32 `json:"moasList"`
}

// AggregateConfig is one configured aggregate.
type AggregateConfig struct {
	Prefix      string `json:"prefix"`
	SummaryOnly bool   `json:"summaryOnly"`
}

// MOASRRConfig is one origin-authorization record.
type MOASRRConfig struct {
	Prefix  string   `json:"prefix"`
	Origins []uint32 `json:"origins"`
}

// ROAConfig is one inline ROA: every listed origin is authorized for
// the prefix up to maxLen (the prefix's own length when zero).
type ROAConfig struct {
	Prefix  string   `json:"prefix"`
	MaxLen  uint8    `json:"maxLen"`
	Origins []uint32 `json:"origins"`
}

// Load parses a configuration from r.
func Load(r io.Reader) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("daemon: parse config: %w", err)
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadFile parses a configuration file.
func LoadFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("daemon: open config: %w", err)
	}
	defer f.Close()
	return Load(f)
}

func (c Config) validate() error {
	if c.AS == 0 {
		return fmt.Errorf("daemon: config requires a nonzero AS")
	}
	switch c.Validation {
	case "", "off", "alarm", "drop":
	default:
		return fmt.Errorf("daemon: validation %q (want off, alarm or drop)", c.Validation)
	}
	for _, o := range c.Originate {
		if _, err := astypes.ParsePrefix(o.Prefix); err != nil {
			return fmt.Errorf("daemon: originate: %w", err)
		}
	}
	for _, a := range c.Aggregates {
		if _, err := astypes.ParsePrefix(a.Prefix); err != nil {
			return fmt.Errorf("daemon: aggregate: %w", err)
		}
	}
	for _, r := range c.MOASRR {
		if _, err := astypes.ParsePrefix(r.Prefix); err != nil {
			return fmt.Errorf("daemon: moasrr: %w", err)
		}
		if len(r.Origins) == 0 {
			return fmt.Errorf("daemon: moasrr record %s with no origins", r.Prefix)
		}
	}
	for _, d := range c.ImportDeny {
		if _, err := astypes.ParsePrefix(d); err != nil {
			return fmt.Errorf("daemon: importDeny: %w", err)
		}
	}
	switch c.ListEncoding {
	case "", "communities", "attribute":
	default:
		return fmt.Errorf("daemon: listEncoding %q (want communities or attribute)", c.ListEncoding)
	}
	if c.TraceEvents < 0 {
		return fmt.Errorf("daemon: negative traceEvents")
	}
	if c.ReconnectSeconds < 0 || c.ReconnectMaxSeconds < 0 {
		return fmt.Errorf("daemon: negative reconnect interval")
	}
	if c.ReconnectMaxSeconds > 0 && c.ReconnectMaxSeconds < c.ReconnectSeconds {
		return fmt.Errorf("daemon: reconnectMaxSeconds %d below reconnectSeconds %d",
			c.ReconnectMaxSeconds, c.ReconnectSeconds)
	}
	for _, r := range c.ROAs {
		prefix, err := astypes.ParsePrefix(r.Prefix)
		if err != nil {
			return fmt.Errorf("daemon: roa: %w", err)
		}
		if len(r.Origins) == 0 {
			return fmt.Errorf("daemon: roa %s with no origins", r.Prefix)
		}
		if r.MaxLen != 0 && (r.MaxLen < prefix.Len || r.MaxLen > 32) {
			return fmt.Errorf("daemon: roa %s maxLen %d out of [%d, 32]", r.Prefix, r.MaxLen, prefix.Len)
		}
	}
	return nil
}

func (c Config) validationMode() speaker.ValidationMode {
	switch c.Validation {
	case "alarm":
		return speaker.ValidationAlarm
	case "drop":
		return speaker.ValidationDrop
	default:
		return speaker.ValidationOff
	}
}

// Daemon is a running configured speaker.
type Daemon struct {
	Speaker *speaker.Speaker
	Store   *dnsval.Store
	// RPKI is the validated ROA store, nil unless an ROA source
	// (roaFile, roas or rtrAddr) is configured.
	RPKI *rpki.Store

	reg   *telemetry.Registry
	admin *telemetry.Admin
	trace *trace.Recorder // nil when tracing is disabled
	// obsRec is the detection-latency observatory; always on (the
	// record path costs nanoseconds, and /debug/status serves it when
	// the admin endpoint is enabled).
	obsRec *obs.Recorder
	// sampler feeds /debug/runtime; nil without an admin endpoint.
	sampler *obs.Sampler
	// ready aggregates the daemon's readiness probes for /readyz.
	ready *telemetry.Readiness
	// rtr is the RTR client, nil unless rtrAddr is configured; its
	// Synced state gates readiness.
	rtr *rpki.Client

	mibServer *http.Server
	mibErr    chan error
	mibAddr   string

	listenAddrs []string

	peerAddrs    map[astypes.ASN]string
	reconnect    time.Duration   // backoff base; zero disables re-dialing
	reconnectMax time.Duration   // backoff cap
	jitter       *backoff.Jitter // shared by every re-dial goroutine
	stop         chan struct{}
	stopOnce     sync.Once
	rtrCancel    context.CancelFunc // stops the RTR client; nil without one

	// Daemon-level instrumentation.
	peerUp            *telemetry.Counter
	peerDownCtr       *telemetry.Counter
	reconnectAttempts *telemetry.Counter

	mu      sync.Mutex
	closing bool // guarded by mu

	wg sync.WaitGroup
}

// Build constructs and starts the daemon: the MOASRR store, the
// speaker, listeners, outbound peerings, originations and aggregates,
// and the MIB HTTP endpoint.
func Build(cfg Config) (*Daemon, error) {
	store := dnsval.NewStore()
	for _, rec := range cfg.MOASRR {
		prefix, err := astypes.ParsePrefix(rec.Prefix)
		if err != nil {
			return nil, err
		}
		store.Register(prefix, core.NewList(asnsOf(rec.Origins)...))
	}

	reg := telemetry.NewRegistry("moas")
	telemetry.RegisterBuildInfo(reg)
	var rec *trace.Recorder
	if cfg.TraceEvents > 0 {
		rec = trace.NewRecorder(cfg.TraceEvents)
	}
	d := &Daemon{
		Store:        store,
		reg:          reg,
		trace:        rec,
		mibErr:       make(chan error, 1),
		peerAddrs:    make(map[astypes.ASN]string, len(cfg.Peers)),
		reconnect:    time.Duration(cfg.ReconnectSeconds) * time.Second,
		reconnectMax: time.Duration(cfg.ReconnectMaxSeconds) * time.Second,
		jitter:       backoff.NewJitter(0),
		stop:         make(chan struct{}),
		peerUp: reg.Counter("daemon_peer_up_total",
			"Outbound peer sessions successfully established (initial dials and re-dials)."),
		peerDownCtr: reg.Counter("daemon_peer_down_total",
			"Peer sessions that went down."),
		reconnectAttempts: reg.Counter("daemon_reconnect_attempts_total",
			"Re-dial attempts made for dropped configured peers."),
		obsRec: obs.NewRecorder(),
		ready:  &telemetry.Readiness{},
	}
	if d.reconnectMax == 0 {
		d.reconnectMax = 16 * d.reconnect
	}
	var deny []astypes.Prefix
	for _, ds := range cfg.ImportDeny {
		prefix, err := astypes.ParsePrefix(ds)
		if err != nil {
			return nil, err
		}
		deny = append(deny, prefix)
	}
	encoding := speaker.EncodeCommunities
	if cfg.ListEncoding == "attribute" {
		encoding = speaker.EncodeAttribute
	}
	if cfg.ROAFile != "" || len(cfg.ROAs) > 0 || cfg.RTRAddr != "" {
		d.RPKI = rpki.NewStore()
		if cfg.ROAFile != "" {
			roas, err := rpki.ParseFile(cfg.ROAFile)
			if err != nil {
				return nil, err
			}
			for _, r := range roas {
				d.RPKI.Add(r)
			}
		}
		for _, rc := range cfg.ROAs {
			prefix, err := astypes.ParsePrefix(rc.Prefix)
			if err != nil {
				return nil, err
			}
			for _, o := range rc.Origins {
				d.RPKI.Add(rpki.ROA{Prefix: prefix, MaxLen: rc.MaxLen, Origin: astypes.ASN(o)})
			}
		}
	}
	spkCfg := speaker.Config{
		AS:           astypes.ASN(cfg.AS),
		RouterID:     cfg.RouterID,
		Validation:   cfg.validationMode(),
		Resolver:     store,
		HoldTime:     time.Duration(cfg.HoldTimeSeconds) * time.Second,
		ImportDeny:   deny,
		ListEncoding: encoding,
		Telemetry:    reg,
		Trace:        rec,
		RPKI:         d.RPKI,
		Obs:          d.obsRec,
		// Always observe peer-down events (the counter fires regardless);
		// peerDown gates the re-dial loop itself on d.reconnect > 0.
		OnPeerDown: d.peerDown,
	}
	s, err := speaker.New(spkCfg)
	if err != nil {
		return nil, err
	}
	d.Speaker = s

	cleanup := func() {
		if d.rtrCancel != nil {
			d.rtrCancel()
			d.wg.Wait()
		}
		d.sampler.Close()
		s.Close()
		if d.mibServer != nil {
			d.mibServer.Close()
		}
		if d.admin != nil {
			d.admin.Close()
		}
	}

	for _, addr := range cfg.Listen {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("daemon: listen %s: %w", addr, err)
		}
		d.listenAddrs = append(d.listenAddrs, ln.Addr().String())
		s.Listen(ln)
	}
	for _, o := range cfg.Originate {
		prefix, err := astypes.ParsePrefix(o.Prefix)
		if err != nil {
			cleanup()
			return nil, err
		}
		s.Originate(prefix, core.NewList(asnsOf(o.MOASList)...))
	}
	for _, a := range cfg.Aggregates {
		prefix, err := astypes.ParsePrefix(a.Prefix)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := s.ConfigureAggregate(prefix, a.SummaryOnly); err != nil {
			cleanup()
			return nil, err
		}
	}
	for _, p := range cfg.Peers {
		d.peerAddrs[astypes.ASN(p.AS)] = p.Addr
		if err := s.Connect(p.Addr, astypes.ASN(p.AS)); err != nil {
			cleanup()
			return nil, err
		}
		d.peerUp.Inc()
	}
	if cfg.MIBAddr != "" {
		ln, err := net.Listen("tcp", cfg.MIBAddr)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("daemon: MIB listen %s: %w", cfg.MIBAddr, err)
		}
		d.mibAddr = ln.Addr().String()
		mux := http.NewServeMux()
		mux.Handle("/mib", s)
		d.mibServer = &http.Server{Handler: mux}
		go func() {
			err := d.mibServer.Serve(ln)
			if err != nil && err != http.ErrServerClosed {
				d.mibErr <- err
			}
			close(d.mibErr)
		}()
	}
	if cfg.RTRAddr != "" {
		client, err := rpki.NewClient(rpki.ClientConfig{
			Addr:          cfg.RTRAddr,
			Store:         d.RPKI,
			ReconnectBase: d.reconnect,
			ReconnectMax:  d.reconnectMax,
			Registry:      reg,
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		d.rtr = client
		// A daemon that cross-validates against an RTR cache is not
		// serving trustworthy verdicts until the first sync lands.
		d.ready.Register("rtr", telemetry.NotSynced(client.Synced, "cache not synced"))
		ctx, cancel := context.WithCancel(context.Background())
		d.rtrCancel = cancel
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			client.Run(ctx)
		}()
	}
	if cfg.MetricsAddr != "" {
		d.sampler = obs.NewSampler(0, 0)
		d.sampler.Start()
		adminCfg := telemetry.AdminConfig{
			Registry: reg,
			MIB:      s,
			Pprof:    cfg.Pprof,
			Ready:    d.ready.Check,
			Debug:    make(map[string]http.Handler),
		}
		if rec != nil {
			for pattern, h := range trace.Routes(rec) {
				adminCfg.Debug[pattern] = h
			}
		}
		adminCfg.Debug["/debug/status"] = obs.NewStatusHandler(obs.StatusConfig{
			Registry: reg,
			Stages:   d.obsRec,
			Runtime:  d.sampler,
			Ready:    d.ready.Check,
		})
		adminCfg.Debug["/debug/runtime"] = d.sampler
		admin, err := telemetry.ServeAdmin(cfg.MetricsAddr, adminCfg)
		if err != nil {
			cleanup()
			return nil, err
		}
		d.admin = admin
	}
	return d, nil
}

// MIBAddr returns the bound MIB HTTP address ("" when disabled).
func (d *Daemon) MIBAddr() string { return d.mibAddr }

// MetricsAddr returns the bound admin endpoint address ("" when
// disabled).
func (d *Daemon) MetricsAddr() string {
	if d.admin == nil {
		return ""
	}
	return d.admin.Addr()
}

// ListenAddrs returns the bound inbound-peering listener addresses in
// configuration order (resolved, so ":0" configs report real ports).
func (d *Daemon) ListenAddrs() []string {
	out := make([]string, len(d.listenAddrs))
	copy(out, d.listenAddrs)
	return out
}

// Registry returns the daemon's telemetry registry (shared with its
// speaker and sessions).
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }

// Trace returns the daemon's flight recorder, or nil when traceEvents
// is zero.
func (d *Daemon) Trace() *trace.Recorder { return d.trace }

// Obs returns the daemon's detection-latency recorder (always non-nil).
func (d *Daemon) Obs() *obs.Recorder { return d.obsRec }

// peerDown counts the loss and, when reconnection is configured,
// schedules re-dialing of a configured outbound peer.
func (d *Daemon) peerDown(peer astypes.ASN) {
	d.peerDownCtr.Inc()
	addr, configured := d.peerAddrs[peer]
	if !configured || d.reconnect <= 0 {
		return
	}
	// Add under mu with the closing check: peerDown runs on a session
	// goroutine, so an unguarded Add races Close's Wait.
	d.mu.Lock()
	if d.closing {
		d.mu.Unlock()
		return
	}
	d.wg.Add(1)
	d.mu.Unlock()
	go func() {
		defer d.wg.Done()
		attempt := 0
		timer := time.NewTimer(reconnectDelay(d.reconnect, d.reconnectMax, attempt, d.jitter))
		defer timer.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-timer.C:
			}
			d.reconnectAttempts.Inc()
			if err := d.Speaker.Connect(addr, peer); err == nil {
				d.peerUp.Inc()
				return
			}
			attempt++
			timer.Reset(reconnectDelay(d.reconnect, d.reconnectMax, attempt, d.jitter))
		}
	}()
}

// reconnectDelay computes the wait before re-dial attempt n (0-based);
// the schedule itself (capped exponential backoff with jitter) lives in
// internal/backoff so the RIS-Live ingest stage and the RTR client
// reuse the exact same machinery. All of a daemon's re-dial goroutines
// share one locked backoff.Jitter instead of each seeding a throwaway
// rand.Rand from the wall clock.
func reconnectDelay(base, max time.Duration, attempt int, jit *backoff.Jitter) time.Duration {
	return jit.Delay(base, max, attempt)
}

// Close shuts the daemon down.
func (d *Daemon) Close() error {
	d.mu.Lock()
	d.closing = true
	d.mu.Unlock()
	d.stopOnce.Do(func() { close(d.stop) })
	if d.rtrCancel != nil {
		d.rtrCancel()
	}
	d.sampler.Close()
	err := d.Speaker.Close()
	d.wg.Wait()
	if d.mibServer != nil {
		if cerr := d.mibServer.Close(); err == nil {
			err = cerr
		}
		<-d.mibErr
	}
	if d.admin != nil {
		if cerr := d.admin.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func asnsOf(in []uint32) []astypes.ASN {
	out := make([]astypes.ASN, len(in))
	for i, v := range in {
		out[i] = astypes.ASN(v)
	}
	return out
}
