// Package repro is a Go implementation of the MOAS-list mechanism for
// detecting invalid routing announcements in the Internet, reproducing
// Zhao et al., "Detection of Invalid Routing Announcement in the
// Internet" (DSN 2002).
//
// The package is a facade over the implementation packages; it exposes
// everything a downstream user needs:
//
//   - Core MOAS-list mechanism: List, Checker, the community encoding
//     (MLVal), the implicit-list rule, and Conflict alarms.
//   - A live BGP-4 speaker (Speaker) with MOAS validation wired into
//     its import policy, running over TCP or any net.Conn.
//   - The AS-level simulation stack (SimNetwork) and experiment harness
//     (Sweep and friends) that regenerate the paper's Figures 9-11.
//   - The measurement pipeline (MeasureMOAS) over synthetic RouteViews
//     dumps that regenerates Figures 4-5 and the §3 statistics.
//   - The off-line monitor (Monitor) and the DNS MOASRR origin
//     database (MOASRRStore) used to resolve alarms (§4.4).
//
// See the examples directory for runnable end-to-end scenarios, and
// DESIGN.md / EXPERIMENTS.md for the system inventory and the
// paper-vs-measured record.
package repro

import (
	"repro/internal/astypes"
	"repro/internal/collector"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/dnsval"
	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/mibcheck"
	"repro/internal/monitor"
	"repro/internal/report"
	"repro/internal/rib"
	"repro/internal/routegen"
	"repro/internal/simbgp"
	"repro/internal/speaker"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Fundamental routing types.
type (
	// ASN is a 2-octet autonomous system number.
	ASN = astypes.ASN
	// Prefix is an IPv4 CIDR prefix.
	Prefix = astypes.Prefix
	// ASPath is a BGP AS path.
	ASPath = astypes.ASPath
	// Community is an RFC 1997 community value.
	Community = astypes.Community
)

// Fundamental constructors and parsers.
var (
	// ParsePrefix parses "a.b.c.d/len".
	ParsePrefix = astypes.ParsePrefix
	// MustPrefix is ParsePrefix for static tables; panics on error.
	MustPrefix = astypes.MustPrefix
	// ParseASN parses a decimal AS number.
	ParseASN = astypes.ParseASN
	// ParseASPath parses "701 1239 {4006 4544}".
	ParseASPath = astypes.ParseASPath
	// NewSeqPath builds a single-sequence AS path.
	NewSeqPath = astypes.NewSeqPath
	// NewCommunity builds a community from (ASN, value).
	NewCommunity = astypes.NewCommunity
)

// MOAS-list mechanism (the paper's contribution, internal/core).
type (
	// List is a MOAS list: the set of ASes entitled to originate a
	// prefix.
	List = core.List
	// Checker performs per-router MOAS-list consistency checking.
	Checker = core.Checker
	// Conflict is one detected MOAS inconsistency (an alarm).
	Conflict = core.Conflict
	// Announcement is the checker's view of a received route.
	Announcement = core.Announcement
	// Verdict is the outcome of checking one announcement.
	Verdict = core.Verdict
)

// MOAS-list constructors and constants.
var (
	// NewList builds a canonical MOAS list.
	NewList = core.NewList
	// ImplicitList is the single-origin list an unlisted route implies.
	ImplicitList = core.ImplicitList
	// FromCommunities extracts a MOAS list from a community attribute.
	FromCommunities = core.FromCommunities
	// EffectiveList resolves explicit-or-implicit list for a route.
	EffectiveList = core.EffectiveList
	// NewChecker builds a Checker.
	NewChecker = core.NewChecker
	// WithAlarmFunc installs an alarm callback on a Checker.
	WithAlarmFunc = core.WithAlarmFunc
)

// MLVal is the reserved community value marking a MOAS-list member.
const MLVal = core.MLVal

// Checker verdicts.
const (
	VerdictConsistent      = core.VerdictConsistent
	VerdictConflict        = core.VerdictConflict
	VerdictOriginNotListed = core.VerdictOriginNotListed
)

// Live BGP speaker (internal/speaker, internal/session, internal/wire).
type (
	// Speaker is a complete BGP-4 speaker with MOAS validation.
	Speaker = speaker.Speaker
	// SpeakerConfig parameterizes a Speaker.
	SpeakerConfig = speaker.Config
	// ValidationMode selects the speaker's MOAS checking behaviour.
	ValidationMode = speaker.ValidationMode
	// Route is one RIB entry.
	Route = rib.Route
	// RIB is a speaker's routing table.
	RIB = rib.Table
	// Update is a decoded BGP UPDATE message.
	Update = wire.Update
)

// NewSpeaker builds a Speaker.
var NewSpeaker = speaker.New

// Speaker validation modes.
const (
	ValidationOff   = speaker.ValidationOff
	ValidationAlarm = speaker.ValidationAlarm
	ValidationDrop  = speaker.ValidationDrop
)

// Simulation stack (internal/sim, internal/simbgp, internal/experiment).
type (
	// SimNetwork is the event-driven AS-level BGP network.
	SimNetwork = simbgp.Network
	// SimConfig parameterizes a SimNetwork.
	SimConfig = simbgp.Config
	// SimNode is one simulated AS.
	SimNode = simbgp.Node
	// Census is the false-route adoption census.
	Census = simbgp.Census
	// ResolverFunc adapts a function to the conflict Resolver interface.
	ResolverFunc = simbgp.ResolverFunc
	// Scenario fixes origin/attacker selections for one run.
	Scenario = experiment.Scenario
	// RunConfig is one simulation run of the harness.
	RunConfig = experiment.RunConfig
	// RunResult is the outcome of one run.
	RunResult = experiment.RunResult
	// SweepConfig describes one figure's curve family.
	SweepConfig = experiment.SweepConfig
	// SweepResult is the produced curve family.
	SweepResult = experiment.SweepResult
	// ModeSpec names one detection configuration within a sweep.
	ModeSpec = experiment.ModeSpec
	// Detection selects a deployment of MOAS checking.
	Detection = experiment.Detection
)

// Simulation constructors and harness entry points.
var (
	// NewSimNetwork builds a simulated network over a topology graph.
	NewSimNetwork = simbgp.NewNetwork
	// RunExperiment executes one configured simulation run.
	RunExperiment = experiment.Run
	// Sweep runs a full curve family in parallel.
	Sweep = experiment.Sweep
	// SelectScenarios generates the paper's 15-run selection scheme.
	SelectScenarios = experiment.Selections
	// AttackerCountsFor builds a sweep's attacker-count axis.
	AttackerCountsFor = experiment.AttackerCountsFor
)

// Node modes and detection deployments.
const (
	SimModeNormal    = simbgp.ModeNormal
	SimModeDetect    = simbgp.ModeDetect
	DetectionOff     = experiment.DetectionOff
	DetectionFull    = experiment.DetectionFull
	DetectionPartial = experiment.DetectionPartial
)

// Topology construction (internal/topology).
type (
	// Graph is an undirected AS-level peering graph.
	Graph = topology.Graph
	// Inference is a topology reconstructed from AS paths.
	Inference = topology.Inference
	// SampleResult is a §5.1-sampled simulation topology.
	SampleResult = topology.SampleResult
	// PaperSet bundles the 25/46/63-AS topologies.
	PaperSet = topology.PaperSet
	// InternetParams sizes the synthetic Internet model.
	InternetParams = topology.InternetParams
)

// Topology constructors.
var (
	// NewGraph returns an empty peering graph.
	NewGraph = topology.NewGraph
	// InferFromPaths reconstructs a topology from observed AS paths.
	InferFromPaths = topology.InferFromPaths
	// SampleTopology applies the §5.1 stub-sampling construction.
	SampleTopology = topology.Sample
	// BuildPaperTopologies produces the 25/46/63-AS topologies.
	BuildPaperTopologies = topology.BuildPaperTopologies
	// GenerateInternet builds the synthetic Internet model.
	GenerateInternet = topology.GenerateInternet
	// DefaultInternetParams is the calibrated model sizing.
	DefaultInternetParams = topology.DefaultInternetParams
)

// Measurement pipeline (internal/routegen, internal/measure).
type (
	// DumpGenerator produces the synthetic RouteViews dump series.
	DumpGenerator = routegen.Generator
	// DumpConfig parameterizes the generator.
	DumpConfig = routegen.Config
	// Dump is one day's routing-table snapshot.
	Dump = routegen.Dump
	// DumpEntry is one table line.
	DumpEntry = routegen.Entry
	// Analysis accumulates MOAS statistics over a dump series.
	Analysis = measure.Analysis
	// MeasureSummary is the §3 headline numbers.
	MeasureSummary = measure.Summary
)

// Measurement constructors and entry points.
var (
	// NewDumpGenerator builds a dump generator.
	NewDumpGenerator = routegen.New
	// DefaultDumpConfig is calibrated against the paper's §3 numbers.
	DefaultDumpConfig = routegen.DefaultConfig
	// NewAnalysis returns an empty measurement analysis.
	NewAnalysis = measure.NewAnalysis
	// MeasureMOAS runs the full pipeline over a generator's series.
	MeasureMOAS = measure.Run
	// WriteDump serializes a dump in the text exchange format.
	WriteDump = routegen.WriteDump
	// ReadDump parses a dump in the text exchange format.
	ReadDump = routegen.ReadDump
)

// Off-line monitor and MOASRR database (internal/monitor, internal/dnsval).
type (
	// Monitor is the off-line MOAS checking process of §4.2.
	Monitor = monitor.Monitor
	// MonitorAlarm is one monitor finding.
	MonitorAlarm = monitor.Alarm
	// MOASCase is a prefix with multiple visible origins.
	MOASCase = monitor.MOASCase
	// MOASRRStore is the DNS MOASRR origin database of §4.4.
	MOASRRStore = dnsval.Store
	// MOASRR is one origin-authorization record.
	MOASRR = dnsval.MOASRR
)

// Monitor and store constructors.
var (
	// NewMonitor returns an empty monitor.
	NewMonitor = monitor.New
	// WithMonitorResolver classifies monitor alarms against a database.
	WithMonitorResolver = monitor.WithResolver
	// NewMOASRRStore returns an empty MOASRR database.
	NewMOASRRStore = dnsval.NewStore
	// WithSigningKey enables MOASRR record signing (DNSSEC stand-in).
	WithSigningKey = dnsval.WithSigningKey
)

// Live-plane data collection, fleet management and orchestration
// (internal/collector, internal/daemon, internal/mibcheck,
// internal/report).
type (
	// Collector is a Route-Views-style passive route archive.
	Collector = collector.Collector
	// CollectorConfig parameterizes a Collector.
	CollectorConfig = collector.Config
	// Daemon is a config-driven deployable speaker.
	Daemon = daemon.Daemon
	// DaemonConfig is the moas-speaker JSON configuration.
	DaemonConfig = daemon.Config
	// MIBClient polls speaker MIB endpoints and cross-checks MOAS lists.
	MIBClient = mibcheck.Client
	// MIBFinding is one fleet-wide MOAS inconsistency.
	MIBFinding = mibcheck.Finding
	// EvalOptions configures a full paper-evaluation run.
	EvalOptions = report.Options
	// EvalReport is the rendered evaluation result.
	EvalReport = report.Report
	// Relations classifies AS peerings (provider/customer/peer).
	Relations = topology.Relations
)

// Constructors and entry points for the operational components.
var (
	// NewCollector builds a passive route collector.
	NewCollector = collector.New
	// LoadDaemonConfig parses a moas-speaker configuration.
	LoadDaemonConfig = daemon.Load
	// BuildDaemon assembles and starts a configured speaker.
	BuildDaemon = daemon.Build
	// NewMIBClient builds a MIB-polling management client.
	NewMIBClient = mibcheck.New
	// CrossCheckMIBs compares per-prefix MOAS lists across routers.
	CrossCheckMIBs = mibcheck.CrossCheck
	// RunEvaluation executes the full paper evaluation.
	RunEvaluation = report.Run
	// InferRelations classifies peerings with the degree heuristic.
	InferRelations = topology.InferRelations
	// NewRelations returns an empty relationship table.
	NewRelations = topology.NewRelations
)
