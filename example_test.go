package repro_test

import (
	"fmt"

	"repro"
)

// The complete detection loop on a five-AS internetwork: a hijack is
// announced, every capable AS compares MOAS lists, the conflict is
// resolved against the MOASRR record, and the false route is contained.
func Example() {
	g := repro.NewGraph()
	g.AddEdge(4, 10)
	g.AddEdge(4, 20)
	g.AddEdge(10, 30)
	g.AddEdge(20, 30)
	g.AddEdge(30, 52)

	prefix := repro.MustPrefix(0x83b30000, 16) // 131.179.0.0/16
	valid := repro.NewList(4)

	net, err := repro.NewSimNetwork(repro.SimConfig{
		Topology: g,
		Resolver: repro.ResolverFunc(func(p repro.Prefix) (repro.List, bool) {
			return valid, p == prefix
		}),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, asn := range net.Nodes() {
		if asn != 52 {
			if err := net.SetMode(asn, repro.SimModeDetect); err != nil {
				fmt.Println(err)
				return
			}
		}
	}
	net.Originate(4, prefix, repro.List{})
	net.OriginateInvalid(52, prefix, repro.List{})
	if err := net.Run(); err != nil {
		fmt.Println(err)
		return
	}
	c := net.TakeCensus(prefix, valid)
	fmt.Printf("hijacked %d/%d, alarms at %d ASes\n",
		c.AdoptedFalse, c.NonAttackers, c.AlarmedNodes)
	// Output:
	// hijacked 0/4, alarms at 3 ASes
}

// The MOASRR database (§4.4) answers "who may originate this prefix",
// including covering lookups for more-specific queries.
func ExampleMOASRRStore() {
	store := repro.NewMOASRRStore()
	store.Register(repro.MustPrefix(0x83b30000, 16), repro.NewList(4, 226))

	sub := repro.MustPrefix(0x83b34500, 24) // inside the /16
	list, ok := store.ValidOrigins(sub)
	fmt.Println(ok, list)
	ok4, _ := store.Verify(sub, 4)
	ok52, _ := store.Verify(sub, 52)
	fmt.Println(ok4, ok52)
	// Output:
	// true {4, 226}
	// true false
}

// The off-line monitor reproduces §4.2's quick-deployment path: no
// router modification, just table dumps from vantage points.
func ExampleMonitor() {
	prefix := repro.MustPrefix(0x83b30000, 16)
	mon := repro.NewMonitor()
	mon.ObserveEntry("route-views", prefix, repro.NewSeqPath(701, 4), nil)
	mon.ObserveEntry("ripe-ris", prefix, repro.NewSeqPath(1239, 52), nil)

	for _, c := range mon.MOASCases() {
		fmt.Println(c.Prefix, c.Origins)
	}
	fmt.Println("alarms:", len(mon.Alarms()))
	// Output:
	// 131.179.0.0/16 [4 52]
	// alarms: 1
}
