GO ?= go

# Fuzz targets exercised by fuzz-smoke, as package:target pairs.
FUZZ_TARGETS := \
	./internal/wire:FuzzDecode \
	./internal/astypes:FuzzParsePrefix \
	./internal/astypes:FuzzParseASPath \
	./internal/astypes:FuzzParseCommunity
FUZZTIME ?= 10s

.PHONY: build test vet race fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## vet: stock go vet plus the repo's own analyzers (cmd/repro-vet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/repro-vet ./...

## race: the full test suite under the race detector.
race:
	$(GO) test -race ./...

## fuzz-smoke: run each fuzz target briefly against its seed corpus.
fuzz-smoke:
	@set -e; for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%%:*}; target=$${entry##*:}; \
		echo "fuzz $$target ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) $$pkg; \
	done

## check: the full verification gate CI runs on every PR.
check: build vet test race fuzz-smoke
