GO ?= go

# Fuzz targets exercised by fuzz-smoke, as package:target pairs.
FUZZ_TARGETS := \
	./internal/wire:FuzzDecode \
	./internal/astypes:FuzzParsePrefix \
	./internal/astypes:FuzzParseASPath \
	./internal/astypes:FuzzParseCommunity \
	./internal/trace:FuzzTraceDecode \
	./internal/mrt:FuzzMRTDecode \
	./internal/mrt:FuzzWriterRoundTrip \
	./internal/mrt/rislive:FuzzRISLiveJSON
FUZZTIME ?= 10s

.PHONY: build test vet vet-test vet-json vet-annotations race e2e bench bench-ingest bench-rov bench-simscale bench-obs bench-smoke fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## vet: stock go vet plus the repo's own analyzers (cmd/repro-vet).
## The multichecker runs under a 60s budget: all ten analyzers over
## the full tree take a few seconds, so hitting the budget means an
## analyzer regressed into pathological behavior.
vet:
	$(GO) vet ./...
	timeout 60 $(GO) run ./cmd/repro-vet ./...

## vet-test: the analyzers' own fixture tests and the driver's exit-code
## regression tests.
vet-test:
	$(GO) test ./internal/analysis/... ./cmd/repro-vet

## vet-json: machine-readable findings (one JSON object per line) for
## the CI artifact; the target itself never fails so the artifact is
## produced even when there are findings.
vet-json:
	$(GO) run ./cmd/repro-vet -json ./... > repro-vet.json; \
		code=$$?; echo "repro-vet exit $$code, $$(wc -l < repro-vet.json) finding(s)"; \
		test $$code -ne 2

## vet-annotations: every //repro:allocfree contract site and every
## //repro:vet ignore suppression in the real tree (fixtures excluded),
## so annotation drift shows up in review.
vet-annotations:
	@echo "== //repro:allocfree sites =="
	@grep -rn --include='*.go' '//repro:allocfree' internal cmd | grep -v testdata || true
	@echo "== //repro:vet ignore sites =="
	@grep -rn --include='*.go' '//repro:vet ignore' internal cmd | grep -v testdata || true

## race: the full test suite under the race detector.
race:
	$(GO) test -race ./...

## e2e: the loopback observability scenario plus the telemetry suite,
## under the race detector.
e2e:
	$(GO) test -race ./internal/telemetry/... ./internal/e2etest/...

## bench: telemetry hot-path overhead, recorded as BENCH_telemetry.json
## for regression tracking (one test2json event per line), plus the
## wire/RIB hot-path benchmarks recorded as BENCH_hotpath.json — the
## *Baseline benchmarks in each pair are the pre-pooling allocating
## paths, so the file itself documents the before/after. BENCH_eval.json
## records the end-to-end evaluation pipeline (figure sweeps, the §3
## measurement study, the event engine) against its *Baseline pairs:
## fresh-network sweeps, the serial map-of-maps measurement pipeline,
## and closure-boxed event scheduling. BENCH_trace.json records the
## flight-recorder record path against its disabled/nil baselines.
bench:
	$(GO) test -json -run='^$$' -bench='^BenchmarkTelemetry' -benchmem \
		./internal/telemetry/ > BENCH_telemetry.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_telemetry.json | sed 's/"Output":"//;s/\\t/\t/g' || true
	$(GO) test -json -run='^$$' -bench='^(BenchmarkWire|BenchmarkRIB)' -benchmem \
		./internal/wire/ ./internal/rib/ > BENCH_hotpath.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_hotpath.json | sed 's/"Output":"//;s/\\t/\t/g' || true
	$(GO) test -json -run='^$$' -benchmem -benchtime=2x \
		-bench='^(BenchmarkFigure9Effectiveness|BenchmarkFigure10TopologySize|BenchmarkFigure11PartialDeployment|BenchmarkMeasureStudy)(Baseline)?$$' \
		. > BENCH_eval.json
	$(GO) test -json -run='^$$' -bench='^BenchmarkEngineEvents(Baseline)?$$' -benchmem \
		./internal/sim/ >> BENCH_eval.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_eval.json | sed 's/"Output":"//;s/\\t/\t/g' || true
	$(GO) test -json -run='^$$' -bench='^BenchmarkTrace' -benchmem \
		./internal/trace/ > BENCH_trace.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_trace.json | sed 's/"Output":"//;s/\\t/\t/g' || true
	$(MAKE) bench-ingest
	$(MAKE) bench-rov
	$(MAKE) bench-simscale
	$(MAKE) bench-obs

## bench-ingest: the MRT ingestion benchmarks — a cold ≥100k-prefix
## table load and the steady-state (zero-alloc) churn path — recorded
## as BENCH_ingest.json; split out so CI can produce the artifact
## without the full bench sweep.
bench-ingest:
	$(GO) test -json -run='^$$' -bench='^BenchmarkMRT' -benchmem \
		./internal/mrt/ > BENCH_ingest.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_ingest.json | sed 's/"Output":"//;s/\\t/\t/g' || true

## bench-rov: the RPKI/ROV benchmarks — the allocation-free covering-ROA
## lookup (0 allocs/op is also pinned by TestValidateAllocFree) and the
## RTR delta-apply churn path — recorded as BENCH_rov.json.
bench-rov:
	$(GO) test -json -run='^$$' -bench='^BenchmarkROV' -benchmem \
		./internal/rpki/ > BENCH_rov.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_rov.json | sed 's/"Output":"//;s/\\t/\t/g' || true

## bench-simscale: the internet-scale simulation benchmarks — compact
## simbgp convergence at 10k and 70k ASes (nodes/s, state-bytes/node,
## allocs/op) plus the 1k compact-vs-map-layout pair that documents the
## memory compaction factor — recorded as BENCH_simscale.json.
bench-simscale:
	$(GO) test -json -run='^$$' -bench='^BenchmarkSimScale' -benchmem \
		./internal/simbgp/ > BENCH_simscale.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_simscale.json | sed 's/"Output":"//;s/\\t/\t/g' || true

## bench-obs: the detection-latency observatory record path — stage
## stamping against its nil-recorder and disabled baselines (the
## contract is ≤200ns and 0 allocs per stamp, also pinned by
## TestRecordPathAllocFree) — recorded as BENCH_obs.json.
bench-obs:
	$(GO) test -json -run='^$$' -bench='^BenchmarkObs' -benchmem 		./internal/obs/ > BENCH_obs.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_obs.json | sed 's/"Output":"//;s/\t/	/g' || true

## bench-smoke: one-iteration run of every hot-path and evaluation
## benchmark so they can't silently rot; part of check (and so CI).
bench-smoke:
	$(GO) test -run='^$$' -bench='^(BenchmarkWire|BenchmarkRIB|BenchmarkTelemetry|BenchmarkEngineEvents|BenchmarkTrace|BenchmarkMRT|BenchmarkROV|BenchmarkObs)' \
		-benchtime=1x -benchmem ./internal/wire/ ./internal/rib/ ./internal/telemetry/ ./internal/sim/ ./internal/trace/ ./internal/mrt/ ./internal/rpki/ ./internal/obs/
	$(GO) test -run='^$$' -benchtime=1x -benchmem \
		-bench='^(BenchmarkFigure9Effectiveness|BenchmarkMeasureStudy)(Baseline)?$$' .
	$(GO) test -run='^$$' -benchtime=1x -benchmem \
		-bench='^BenchmarkSimScaleConverge1k(Baseline)?$$' ./internal/simbgp/

## fuzz-smoke: run each fuzz target briefly against its seed corpus.
fuzz-smoke:
	@set -e; for entry in $(FUZZ_TARGETS); do \
		pkg=$${entry%%:*}; target=$${entry##*:}; \
		echo "fuzz $$target ($$pkg, $(FUZZTIME))"; \
		$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) $$pkg; \
	done

## check: the full verification gate CI runs on every PR.
check: build vet vet-test test race e2e bench-smoke fuzz-smoke
