// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md §5 and
// microbenchmarks of the hot paths. Each figure bench reports the
// reproduced quantities through b.ReportMetric, so `go test -bench=.`
// prints the paper-shaped numbers alongside the timing:
//
//	Figure 4/5 + §3 stats:  BenchmarkFigure4DailyMOASCounts,
//	                        BenchmarkFigure5DurationHistogram
//	Figure 9:               BenchmarkFigure9Effectiveness
//	Figure 10:              BenchmarkFigure10TopologySize
//	Figure 11:              BenchmarkFigure11PartialDeployment
//
// EXPERIMENTS.md records the measured values against the paper's.
package repro

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/rib"
	"repro/internal/routegen"
	"repro/internal/topology"
	"repro/internal/wire"
)

var (
	benchTopoOnce sync.Once
	benchTopoSet  *topology.PaperSet
	benchTopoErr  error
)

func benchTopologies(b *testing.B) *topology.PaperSet {
	b.Helper()
	benchTopoOnce.Do(func() {
		benchTopoSet, benchTopoErr = topology.BuildPaperTopologies(42)
	})
	if benchTopoErr != nil {
		b.Fatal(benchTopoErr)
	}
	return benchTopoSet
}

// BenchmarkFigure4DailyMOASCounts runs the §3.1 measurement pipeline
// over the full 1279-day synthetic RouteViews series and reports the
// Figure 4 headline numbers (daily medians by year, spike height).
func BenchmarkFigure4DailyMOASCounts(b *testing.B) {
	var summary measure.Summary
	for i := 0; i < b.N; i++ {
		g, err := routegen.New(routegen.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		a, err := measure.Run(g)
		if err != nil {
			b.Fatal(err)
		}
		summary = a.Summarize()
	}
	b.ReportMetric(summary.MedianDailyByYear[1998], "median-1998")
	b.ReportMetric(summary.MedianDailyByYear[2001], "median-2001")
	b.ReportMetric(float64(summary.MaxDaily), "max-daily")
}

// BenchmarkFigure5DurationHistogram reports the Figure 5 shape: the
// one-day fraction and the total distinct MOAS cases.
func BenchmarkFigure5DurationHistogram(b *testing.B) {
	g, err := routegen.New(routegen.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	a, err := measure.Run(g)
	if err != nil {
		b.Fatal(err)
	}
	var oneDay, total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := a.DurationHistogram()
		oneDay, total = h.Count(1), h.Total()
	}
	b.ReportMetric(float64(total), "total-cases")
	b.ReportMetric(100*float64(oneDay)/float64(total), "one-day-%")
}

// figureSweep runs one (topology, origins, modes) sweep at the paper's
// anchor attacker fractions (~4% and ~30%) and returns the result.
// fresh forces a new simulated network per run (the pre-pooling
// behaviour); the default draws networks from the per-topology pool.
func figureSweep(b *testing.B, topo *topology.SampleResult, name string,
	origins int, modes []experiment.ModeSpec, fresh bool) *experiment.SweepResult {
	b.Helper()
	n := topo.Graph.NumNodes()
	low := n * 4 / 100
	if low < 1 {
		low = 1
	}
	high := n * 30 / 100
	res, err := experiment.Sweep(experiment.SweepConfig{
		Topology:       topo,
		TopologyName:   name,
		NumOrigins:     origins,
		AttackerCounts: []int{low, high},
		Modes:          modes,
		Seed:           42,
		ColdStart:      true,
		FreshNetworks:  fresh,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

var normalVsFull = []experiment.ModeSpec{
	{Label: "Normal BGP", Detection: experiment.DetectionOff},
	{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
}

// BenchmarkFigure9Effectiveness regenerates Figure 9: normal BGP vs
// full MOAS detection on the 46-AS topology (one origin AS; the
// two-origin variant is the Figure9TwoOrigins bench).
func BenchmarkFigure9Effectiveness(b *testing.B) {
	set := benchTopologies(b)
	var res *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		res = figureSweep(b, set.T46, "46", 1, normalVsFull, false)
	}
	lo, hi := res.Points[0], res.Points[1]
	b.ReportMetric(lo.MeanFalsePct[0], "normal@4%")
	b.ReportMetric(lo.MeanFalsePct[1], "full@4%")
	b.ReportMetric(hi.MeanFalsePct[0], "normal@30%")
	b.ReportMetric(hi.MeanFalsePct[1], "full@30%")
}

// BenchmarkFigure9EffectivenessBaseline is the same sweep with network
// pooling disabled: every simulation run pays full network
// construction, as before the Reset/pool path existed.
func BenchmarkFigure9EffectivenessBaseline(b *testing.B) {
	set := benchTopologies(b)
	for i := 0; i < b.N; i++ {
		figureSweep(b, set.T46, "46", 1, normalVsFull, true)
	}
}

// BenchmarkFigure9TwoOrigins is Figure 9(b): two origin ASes.
func BenchmarkFigure9TwoOrigins(b *testing.B) {
	set := benchTopologies(b)
	var res *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		res = figureSweep(b, set.T46, "46", 2, normalVsFull, false)
	}
	hi := res.Points[1]
	b.ReportMetric(hi.MeanFalsePct[0], "normal@30%")
	b.ReportMetric(hi.MeanFalsePct[1], "full@30%")
}

// BenchmarkFigure10TopologySize regenerates Figure 10: the 25/46/63-AS
// comparison, reporting full-detection adoption at ~30% attackers per
// topology (the paper's "larger topologies are more robust" claim).
func BenchmarkFigure10TopologySize(b *testing.B) {
	set := benchTopologies(b)
	topos := []struct {
		name string
		s    *topology.SampleResult
	}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}}
	results := make(map[string]*experiment.SweepResult, 3)
	for i := 0; i < b.N; i++ {
		for _, topo := range topos {
			results[topo.name] = figureSweep(b, topo.s, topo.name, 1, normalVsFull, false)
		}
	}
	for _, topo := range topos {
		hi := results[topo.name].Points[1]
		b.ReportMetric(hi.MeanFalsePct[1], "full@30%-"+topo.name+"AS")
	}
}

// BenchmarkFigure10TopologySizeBaseline disables network pooling.
func BenchmarkFigure10TopologySizeBaseline(b *testing.B) {
	set := benchTopologies(b)
	for i := 0; i < b.N; i++ {
		for _, topo := range []struct {
			name string
			s    *topology.SampleResult
		}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}} {
			figureSweep(b, topo.s, topo.name, 1, normalVsFull, true)
		}
	}
}

// BenchmarkFigure11PartialDeployment regenerates Figure 11: 50% vs
// 100% deployment on the 46- and 63-AS topologies.
func BenchmarkFigure11PartialDeployment(b *testing.B) {
	set := benchTopologies(b)
	modes := []experiment.ModeSpec{
		{Label: "Normal BGP", Detection: experiment.DetectionOff},
		{Label: "Half MOAS Detection", Detection: experiment.DetectionPartial, DeployFraction: 0.5},
		{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
	}
	topos := []struct {
		name string
		s    *topology.SampleResult
	}{{"46", set.T46}, {"63", set.T63}}
	results := make(map[string]*experiment.SweepResult, 2)
	for i := 0; i < b.N; i++ {
		for _, topo := range topos {
			results[topo.name] = figureSweep(b, topo.s, topo.name, 1, modes, false)
		}
	}
	for _, topo := range topos {
		hi := results[topo.name].Points[1]
		b.ReportMetric(hi.MeanFalsePct[0], "normal@30%-"+topo.name+"AS")
		b.ReportMetric(hi.MeanFalsePct[1], "half@30%-"+topo.name+"AS")
		b.ReportMetric(hi.MeanFalsePct[2], "full@30%-"+topo.name+"AS")
	}
}

// BenchmarkFigure11PartialDeploymentBaseline disables network pooling.
func BenchmarkFigure11PartialDeploymentBaseline(b *testing.B) {
	set := benchTopologies(b)
	modes := []experiment.ModeSpec{
		{Label: "Normal BGP", Detection: experiment.DetectionOff},
		{Label: "Half MOAS Detection", Detection: experiment.DetectionPartial, DeployFraction: 0.5},
		{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
	}
	for i := 0; i < b.N; i++ {
		for _, topo := range []struct {
			name string
			s    *topology.SampleResult
		}{{"46", set.T46}, {"63", set.T63}} {
			figureSweep(b, topo.s, topo.name, 1, modes, true)
		}
	}
}

// BenchmarkMeasureStudy runs the full §3 measurement study — 1279
// daily dumps generated by a bounded worker pool, observed in day
// order by the flat accumulator — and reports the headline case count.
func BenchmarkMeasureStudy(b *testing.B) {
	g, err := routegen.New(routegen.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var summary measure.Summary
	for i := 0; i < b.N; i++ {
		a, err := measure.RunParallel(g, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		summary = a.Summarize()
	}
	b.ReportMetric(float64(summary.TotalCases), "total-cases")
}

// BenchmarkMeasureStudyBaseline is the pre-optimization pipeline: one
// freshly allocated dump per day, observed serially through the
// map-of-maps accumulator.
func BenchmarkMeasureStudyBaseline(b *testing.B) {
	g, err := routegen.New(routegen.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var summary measure.Summary
	for i := 0; i < b.N; i++ {
		a := measure.NewAnalysis()
		for day := 0; day < g.Days(); day++ {
			d, err := g.DumpForDay(day)
			if err != nil {
				b.Fatal(err)
			}
			a.ObserveBaseline(d)
		}
		summary = a.Summarize()
	}
	b.ReportMetric(float64(summary.TotalCases), "total-cases")
}

// BenchmarkAblationForgedSupersetList: the §4.1 forging attacker. The
// reported adoption should stay close to the bare-announcement case —
// set inequality catches the superset list.
func BenchmarkAblationForgedSupersetList(b *testing.B) {
	set := benchTopologies(b)
	var res *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		n := set.T46.Graph.NumNodes()
		r, err := experiment.Sweep(experiment.SweepConfig{
			Topology:          set.T46,
			TopologyName:      "46",
			NumOrigins:        2,
			AttackerCounts:    []int{n * 30 / 100},
			Modes:             normalVsFull,
			Seed:              42,
			ColdStart:         true,
			ForgeSupersetList: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Points[0].MeanFalsePct[1], "full@30%-forged")
}

// BenchmarkAblationStripMOAS: attackers strip MOAS communities from
// routes they relay (§4.3's community-drop caveat, adversarial form).
func BenchmarkAblationStripMOAS(b *testing.B) {
	set := benchTopologies(b)
	var res *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		n := set.T46.Graph.NumNodes()
		r, err := experiment.Sweep(experiment.SweepConfig{
			Topology:           set.T46,
			TopologyName:       "46",
			NumOrigins:         2,
			AttackerCounts:     []int{n * 30 / 100},
			Modes:              normalVsFull,
			Seed:               42,
			ColdStart:          true,
			StripMOASInTransit: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Points[0].MeanFalsePct[1], "full@30%-strip")
}

// BenchmarkAblationTransitAttackers places every attacker in a transit
// AS (the paper's §5.1 remark that transit attackers can block more
// valid routes), versus the default all-AS placement.
func BenchmarkAblationTransitAttackers(b *testing.B) {
	set := benchTopologies(b)
	topo := set.T46
	transits := topo.TransitASes()
	stubs := topo.StubASes()
	numAttackers := len(transits) / 2
	var adopted float64
	for i := 0; i < b.N; i++ {
		scen := experiment.Scenario{
			Origins:    stubs[:1],
			Attackers:  transits[:numAttackers],
			DeploySeed: 1,
		}
		res, err := experiment.Run(experiment.RunConfig{
			Topology:  topo,
			Scenario:  scen,
			Detection: experiment.DetectionFull,
			ColdStart: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		adopted = res.Census.FalsePct()
	}
	b.ReportMetric(adopted, "full-transit-attackers-%")
}

// Microbenchmarks of the hot paths.

func benchUpdate() *wire.Update {
	return &wire.Update{
		Attrs: wire.PathAttrs{
			HasOrigin:  true,
			HasNextHop: true,
			NextHop:    0x0a000001,
			ASPath:     astypes.NewSeqPath(701, 1239, 3561, 4),
			Communities: core.NewList(4, 226).
				Communities(),
		},
		NLRI: []astypes.Prefix{astypes.MustPrefix(0x83b30000, 16)},
	}
}

func BenchmarkWireEncodeUpdate(b *testing.B) {
	u := benchUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Encode(u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeUpdate(b *testing.B) {
	buf, err := wire.Encode(benchUpdate())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckerConsistent(b *testing.B) {
	c := core.NewChecker()
	list := core.NewList(4, 226)
	ann := core.Announcement{
		Prefix:      astypes.MustPrefix(0x83b30000, 16),
		Path:        astypes.NewSeqPath(701, 4),
		Communities: list.Communities(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Check(ann)
	}
}

func BenchmarkCheckerConflict(b *testing.B) {
	c := core.NewChecker()
	c.Check(core.Announcement{
		Prefix: astypes.MustPrefix(0x83b30000, 16),
		Path:   astypes.NewSeqPath(701, 4),
	})
	attack := core.Announcement{
		Prefix: astypes.MustPrefix(0x83b30000, 16),
		Path:   astypes.NewSeqPath(9, 52),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Check(attack)
	}
}

func BenchmarkRIBDecisionProcess(b *testing.B) {
	tbl := rib.NewTable()
	prefix := astypes.MustPrefix(0x83b30000, 16)
	for peer := astypes.ASN(2); peer < 10; peer++ {
		tbl.Update(&rib.Route{
			Prefix:    prefix,
			Path:      astypes.NewSeqPath(peer, 100, 4),
			LocalPref: rib.DefaultLocalPref,
			FromPeer:  peer,
		})
	}
	update := &rib.Route{
		Prefix:    prefix,
		Path:      astypes.NewSeqPath(11, 4),
		LocalPref: rib.DefaultLocalPref,
		FromPeer:  11,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl.Update(update)
	}
}

func BenchmarkSimConvergence46AS(b *testing.B) {
	set := benchTopologies(b)
	scenarios, err := experiment.Selections(set.T46, 1, 2, 1, 1, 5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.RunConfig{
		Topology:  set.T46,
		Scenario:  scenarios[0],
		Detection: experiment.DetectionFull,
		ColdStart: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDumpGeneration(b *testing.B) {
	g, err := routegen.New(routegen.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.DumpForDay(i % g.Days()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologySampling(b *testing.B) {
	inf, err := topology.GenerateInternet(topology.DefaultInternetParams(), 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.SampleToSize(inf, 46, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationValleyFreePolicy reruns the Figure 9 anchor under
// Gao-Rexford valley-free export policy instead of flooding: policy
// restricts where the valid announcement travels, so detection coverage
// (and the attack's reach) both change.
func BenchmarkAblationValleyFreePolicy(b *testing.B) {
	set := benchTopologies(b)
	var res *experiment.SweepResult
	for i := 0; i < b.N; i++ {
		n := set.T46.Graph.NumNodes()
		r, err := experiment.Sweep(experiment.SweepConfig{
			Topology:       set.T46,
			TopologyName:   "46",
			NumOrigins:     1,
			AttackerCounts: []int{n * 30 / 100},
			Modes:          normalVsFull,
			Seed:           42,
			ColdStart:      true,
			ValleyFree:     true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Points[0].MeanFalsePct[0], "normal@30%-valleyfree")
	b.ReportMetric(res.Points[0].MeanFalsePct[1], "full@30%-valleyfree")
}
