// Command moas-measure runs the paper's §3 measurement pipeline over
// the synthetic RouteViews dump series: the daily MOAS case counts of
// Figure 4, the case-duration histogram of Figure 5, and the §3 summary
// statistics. With -emit-dumps it also writes daily table dumps in the
// text format cmd/moas-monitor consumes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/measure"
	"repro/internal/routegen"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1997, "generator seed")
		days      = flag.Int("days", routegen.StudyDays, "study window length in days")
		fig4      = flag.Bool("fig4", false, "print the full Figure 4 daily series")
		fig5      = flag.Bool("fig5", false, "print the Figure 5 duration histogram")
		emitDumps = flag.String("emit-dumps", "", "directory to write daily dump files into")
		emitCount = flag.Int("emit-count", 5, "number of days to emit with -emit-dumps")
		emitFrom  = flag.Int("emit-from", 0, "first day to emit with -emit-dumps")
		csvDir    = flag.String("csv", "", "directory to write fig4.csv and fig5.csv into")
		binary    = flag.Bool("binary", false, "emit dumps in the binary archive format")
		par       = flag.Int("parallelism", 0, "dump-generation workers (0 = GOMAXPROCS)")
		mrtDir    = flag.String("mrt", "", "directory of MRT archives to measure instead of the synthetic series (one file per study day)")
	)
	flag.Parse()
	var err error
	if *mrtDir != "" {
		err = runMRT(*mrtDir, *fig4, *fig5, *csvDir)
	} else {
		err = run(*seed, *days, *fig4, *fig5, *emitDumps, *emitFrom, *emitCount, *csvDir, *binary, *par)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "moas-measure:", err)
		os.Exit(1)
	}
}

// runMRT runs the origin-set study over a directory of real MRT
// archives (RouteViews/RIS table dumps or update traces), one file per
// study day, via the measure.ObserveMRT adapter.
func runMRT(dir string, fig4, fig5 bool, csvDir string) error {
	analysis := measure.NewAnalysis()
	files, err := analysis.ObserveMRTDir(dir)
	if err != nil {
		return err
	}
	fmt.Println("== MRT ingest ==")
	for _, f := range files {
		fmt.Printf("%-40s records=%d rib-prefixes=%d rib-entries=%d updates=%d skipped=%d malformed=%d as4-substituted=%d\n",
			f.Name, f.Result.Stats.Records, f.Result.Stats.RIBPrefixes, f.Result.Stats.RIBEntries,
			f.Result.Stats.Updates, f.Result.Stats.Skipped, f.Result.Malformed, f.Result.Stats.AS4Substituted)
	}
	fmt.Println("\n== Summary (paper §3) ==")
	fmt.Print(analysis.Summarize())
	if csvDir != "" {
		if err := writeCSVs(analysis, csvDir); err != nil {
			return err
		}
	}
	printFigures(analysis, fig4, fig5)
	return nil
}

func run(seed int64, days int, fig4, fig5 bool, emitDir string, emitFrom, emitCount int, csvDir string, binary bool, parallelism int) error {
	if parallelism < 0 {
		return fmt.Errorf("parallelism %d must be >= 0 (0 = GOMAXPROCS)", parallelism)
	}
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	cfg := routegen.DefaultConfig()
	cfg.Seed = seed
	cfg.Days = days
	gen, err := routegen.New(cfg)
	if err != nil {
		return err
	}

	if emitDir != "" {
		return emitDumps(gen, emitDir, emitFrom, emitCount, binary)
	}

	analysis, err := measure.RunParallel(gen, parallelism)
	if err != nil {
		return err
	}
	fmt.Println("== Summary (paper §3) ==")
	fmt.Print(analysis.Summarize())

	if csvDir != "" {
		if err := writeCSVs(analysis, csvDir); err != nil {
			return err
		}
	}

	printFigures(analysis, fig4, fig5)
	return nil
}

func printFigures(analysis *measure.Analysis, fig4, fig5 bool) {
	if fig4 {
		fmt.Println("\n== Figure 4: daily MOAS case counts ==")
		fmt.Printf("%-8s %-12s %s\n", "day", "date", "cases")
		for _, dc := range analysis.Daily() {
			fmt.Printf("%-8d %-12s %d\n", dc.Day, dc.Date.Format("2006-01-02"), dc.Cases)
		}
	}
	if fig5 {
		fmt.Println("\n== Figure 5: MOAS case duration histogram ==")
		fmt.Printf("%-16s %s\n", "duration(days)", "cases")
		for _, bin := range analysis.DurationHistogram().Bins() {
			fmt.Printf("%-16d %d\n", bin.Value, bin.Count)
		}
	}
}

func writeCSVs(analysis *measure.Analysis, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, out := range []struct {
		name  string
		write func(w io.Writer) error
	}{
		{"fig4.csv", analysis.WriteFigure4CSV},
		{"fig5.csv", analysis.WriteFigure5CSV},
	} {
		name := filepath.Join(dir, out.name)
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := out.write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", name)
	}
	return nil
}

func emitDumps(gen *routegen.Generator, dir string, from, count int, binary bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext, write := ".txt", routegen.WriteDump
	if binary {
		ext, write = ".bin", routegen.WriteBinaryDump
	}
	for day := from; day < from+count && day < gen.Days(); day++ {
		d, err := gen.DumpForDay(day)
		if err != nil {
			return err
		}
		name := filepath.Join(dir, fmt.Sprintf("dump-%s%s", d.Date.Format("2006-01-02"), ext))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := write(f, d); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", name)
	}
	return nil
}
