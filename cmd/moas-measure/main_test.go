package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunShortWindow(t *testing.T) {
	if err := run(7, 30 /* days */, true, true, "", 0, 0, "", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelismFlag(t *testing.T) {
	if err := run(7, 30, false, false, "", 0, 0, "", false, -1); err == nil {
		t.Error("negative parallelism accepted")
	}
	if err := run(7, 30, false, false, "", 0, 0, "", false, 3); err != nil {
		t.Fatalf("parallelism 3: %v", err)
	}
}

func TestRunEmitDumpsAndCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run(7, 30, false, false, dir, 2, 3, "", false, 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("emitted %d dumps, want 3", len(entries))
	}
	binDir := t.TempDir()
	if err := run(7, 30, false, false, binDir, 0, 1, "", true, 0); err != nil {
		t.Fatal(err)
	}
	bins, _ := os.ReadDir(binDir)
	if len(bins) != 1 || filepath.Ext(bins[0].Name()) != ".bin" {
		t.Fatalf("binary emission: %v", bins)
	}

	csvDir := t.TempDir()
	if err := run(7, 30, false, false, "", 0, 0, csvDir, false, 0); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4.csv", "fig5.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
