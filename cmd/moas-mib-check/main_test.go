package main

import (
	"net/http/httptest"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/mibcheck"
	"repro/internal/speaker"
)

func TestSweepOnce(t *testing.T) {
	prefix := astypes.MustPrefix(0x83b30000, 16)
	mk := func(asn astypes.ASN, list core.List) *speaker.Speaker {
		s, err := speaker.New(speaker.Config{AS: asn, RouterID: uint32(asn)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		s.Originate(prefix, list)
		return s
	}
	// Two routers holding inconsistent lists for the same prefix.
	r1 := mk(4, core.NewList(4))
	r2 := mk(52, core.NewList(52))
	srv1 := httptest.NewServer(r1)
	defer srv1.Close()
	srv2 := httptest.NewServer(r2)
	defer srv2.Close()

	client := mibcheck.New()
	if !sweepOnce(client, []string{srv1.URL, srv2.URL}) {
		t.Error("inconsistency not reported")
	}
	// A single consistent router: quiet sweep.
	if sweepOnce(client, []string{srv1.URL}) {
		t.Error("clean fleet reported problems")
	}
	// Dead endpoint counts as a problem.
	if !sweepOnce(client, []string{"http://127.0.0.1:1/mib"}) {
		t.Error("fetch failure not reported")
	}
}
