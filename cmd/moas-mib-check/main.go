// Command moas-mib-check is the §4.2 management application: it polls
// the MIB HTTP endpoints of a fleet of moas-speaker instances, gathers
// every router's per-prefix MOAS lists, and cross-checks them. A prefix
// whose lists disagree across routers is a MOAS conflict somewhere in
// the network — even when every individual router's local view is
// consistent.
//
// Usage:
//
//	moas-mib-check http://r1:8479/mib http://r2:8479/mib ...
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/mibcheck"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 5*time.Second, "per-endpoint HTTP timeout")
		watch   = flag.Duration("watch", 0, "re-poll interval (0 = run once)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: moas-mib-check [-watch 30s] http://router:port/mib ...")
		os.Exit(2)
	}
	client := mibcheck.New(mibcheck.WithHTTPClient(&http.Client{Timeout: *timeout}))
	for {
		failed := sweepOnce(client, flag.Args())
		if *watch == 0 {
			if failed {
				os.Exit(1)
			}
			return
		}
		time.Sleep(*watch)
	}
}

func sweepOnce(client *mibcheck.Client, urls []string) (foundProblems bool) {
	findings, views, errs := client.Sweep(urls)
	fmt.Printf("%s polled %d endpoint(s): %d reachable, %d finding(s)\n",
		time.Now().Format(time.RFC3339), len(urls), len(views), len(findings))
	for _, err := range errs {
		fmt.Println("  fetch error:", err)
	}
	for _, v := range views {
		if v.RouterAlarms > 0 {
			fmt.Printf("  router AS %s (%s) reports %d local alarm(s)\n", v.AS, v.Source, v.RouterAlarms)
			foundProblems = true
		}
	}
	for _, f := range findings {
		fmt.Printf("  CONFLICT %s:\n", f.Prefix)
		for _, view := range f.Views {
			fmt.Printf("    %-40s MOAS list %s\n", view.Source, view.List)
		}
		foundProblems = true
	}
	return foundProblems || len(errs) > 0
}
