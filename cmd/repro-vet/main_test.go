package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis/all"
)

// TestFullTreeNeverCrashes is the regression test for the driver's exit
// contract: over the full repository tree repro-vet reports findings
// (exit 1) or a clean pass (exit 0), but never a load/internal error
// (exit 2). The tree currently carries suppressions for every known
// finding, so the expected code is exactly 0 — but the invariant this
// test exists for is "never 2".
func TestFullTreeNeverCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", "../..", "./..."}, &stdout, &stderr)
	if code == 2 {
		t.Fatalf("repro-vet crashed on the full tree (exit 2)\nstderr: %s", stderr.String())
	}
	if code != 0 {
		t.Errorf("full tree not clean (exit %d):\n%s", code, stdout.String())
	}
}

// TestListShowsAllAnalyzers pins the registry size: ten analyzers,
// each with a one-line doc.
func TestListShowsAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if strings.TrimSpace(line) != "" {
			lines++
		}
	}
	if want := len(all.Analyzers()); lines != want {
		t.Fatalf("-list printed %d analyzers, registry has %d", lines, want)
	}
	if want := 10; lines != want {
		t.Fatalf("-list printed %d analyzers, want %d", lines, want)
	}
}

// TestJSONOutput runs the driver over the testdata/badmod module,
// which carries one guaranteed spanthread finding and one determinism
// finding, and checks every output line parses as a finding object
// with the documented fields.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dir", "testdata/badmod", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("badmod exit %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}
	analyzers := map[string]bool{}
	findings := 0
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("non-JSON output line %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Col == 0 || f.Analyzer == "" || f.Message == "" {
			t.Fatalf("finding missing fields: %q", line)
		}
		analyzers[f.Analyzer] = true
		findings++
	}
	if findings < 2 {
		t.Fatalf("got %d findings from badmod, want >= 2", findings)
	}
	for _, want := range []string{"spanthread", "determinism"} {
		if !analyzers[want] {
			t.Errorf("no %s finding in badmod output", want)
		}
	}
}

// TestUnknownAnalyzerIsUsageError pins -run validation as a usage error
// (exit 2), distinct from findings.
func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}
