// Package core mirrors repro/internal/core's forensic types so the
// driver tests can trigger spanthread findings in a tiny module.
package core

type Prefix struct {
	Addr uint32
	Len  uint8
}

type Conflict struct {
	Prefix Prefix
	Span   uint64
}
