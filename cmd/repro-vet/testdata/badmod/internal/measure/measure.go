// Package measure sits inside the determinism scope (path suffix
// internal/measure) and deliberately reads the wall clock.
package measure

import "time"

func Wall() int64 { return time.Now().UnixNano() }
