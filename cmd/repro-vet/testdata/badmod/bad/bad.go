// Package bad drops span provenance, giving the driver tests a
// guaranteed spanthread finding.
package bad

import "badmod/internal/core"

func Make(p core.Prefix) core.Conflict {
	return core.Conflict{Prefix: p}
}
