// Command repro-vet is the multichecker for this repository's own
// static analyzers: invariants of the MOAS-detection reproduction that
// the compiler and stock go vet cannot see. It loads the requested
// packages (default ./...), runs every registered analyzer, prints
// findings in the usual file:line:col form (or one JSON object per
// line with -json), and exits nonzero when any finding survives
// suppression.
//
// Usage:
//
//	repro-vet [-dir module] [-run name,name] [-list] [-json] [patterns...]
//
// Suppress a finding at a specific site with:
//
//	//repro:vet ignore <analyzer> -- reason
//
// See docs/static-analysis.md for each analyzer's invariant.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/all"
	"repro/internal/analysis/load"
)

// jsonFinding is the -json wire form: one object per finding per line,
// stable field names for CI artifact consumers.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repro-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("dir", ".", "module directory to analyze")
		runList  = fs.String("run", "", "comma-separated analyzer names to run (default all)")
		list     = fs.Bool("list", false, "list registered analyzers and exit")
		jsonMode = fs.Bool("json", false, "emit one JSON finding object per line")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := all.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runList != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "repro-vet: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	pkgs, err := load.Packages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "repro-vet: %v\n", err)
		return 2
	}

	enc := json.NewEncoder(stdout)
	findings := 0
	for _, pkg := range pkgs {
		// The analyzers' own fixture-free packages are still analyzed;
		// nothing is special-cased. Suppression comments are the only
		// escape hatch.
		diags, err := analysis.Run(analysis.Unit{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "repro-vet: %v\n", err)
			return 2
		}
		for _, d := range diags {
			if *jsonMode {
				enc.Encode(jsonFinding{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			} else {
				fmt.Fprintln(stdout, d)
			}
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "repro-vet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
