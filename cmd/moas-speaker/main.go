// Command moas-speaker runs a MOAS-validating BGP speaker from a JSON
// configuration file: peering sessions, originated prefixes with their
// MOAS lists, route aggregates, a local MOASRR origin database for
// alarm resolution, and an optional HTTP endpoint serving the §4.2 MIB
// view. It is the "router-side" deployment of the paper's mechanism.
//
// Example configuration:
//
//	{
//	  "as": 4,
//	  "routerID": 4,
//	  "validation": "drop",
//	  "listen": ["127.0.0.1:1790"],
//	  "mibAddr": "127.0.0.1:8479",
//	  "peers": [{"addr": "127.0.0.1:1791", "as": 226}],
//	  "originate": [{"prefix": "131.179.0.0/16", "moasList": [4, 226]}],
//	  "moasrr": [{"prefix": "131.179.0.0/16", "origins": [4, 226]}]
//	}
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
)

func main() {
	var (
		configPath  = flag.String("config", "", "path to the JSON configuration (required)")
		metricsAddr = flag.String("metrics-addr", "", "admin endpoint address serving /metrics, /healthz and /debug/mib (overrides metricsAddr in the config)")
		verbose     = flag.Bool("v", false, "log every MOAS alarm")
	)
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "usage: moas-speaker -config speaker.json")
		os.Exit(2)
	}
	if err := run(*configPath, *metricsAddr, *verbose); err != nil {
		log.Fatal("moas-speaker: ", err)
	}
}

func run(configPath, metricsAddr string, verbose bool) error {
	cfg, err := daemon.LoadFile(configPath)
	if err != nil {
		return err
	}
	if metricsAddr != "" {
		cfg.MetricsAddr = metricsAddr
	}
	d, err := daemon.Build(cfg)
	if err != nil {
		return err
	}
	defer d.Close()

	log.Printf("moas-speaker: AS %d up, validation=%s, %d peer(s) configured",
		cfg.AS, cfg.Validation, len(cfg.Peers))
	if addr := d.MIBAddr(); addr != "" {
		log.Printf("moas-speaker: MIB at http://%s/mib", addr)
	}
	if addr := d.MetricsAddr(); addr != "" {
		log.Printf("moas-speaker: metrics at http://%s/metrics", addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	if verbose {
		// Poll the alarm log; the speaker also supports an OnAlarm
		// callback, but a config-driven daemon reports periodically.
		go logAlarms(d)
	}
	<-stop
	log.Println("moas-speaker: shutting down")
	return nil
}

func logAlarms(d *daemon.Daemon) {
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	seen := 0
	for range ticker.C {
		alarms := d.Speaker.Alarms()
		for _, a := range alarms[seen:] {
			log.Println("ALARM:", conflictString(a))
		}
		seen = len(alarms)
	}
}

func conflictString(c core.Conflict) string {
	return c.Error()
}
