package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/daemon"
)

// TestConfigRoundTrip exercises the documented example configuration.
func TestConfigRoundTrip(t *testing.T) {
	cfgJSON := `{
	  "as": 4,
	  "routerID": 4,
	  "validation": "drop",
	  "listen": ["127.0.0.1:0"],
	  "originate": [{"prefix": "131.179.0.0/16", "moasList": [4, 226]}],
	  "moasrr": [{"prefix": "131.179.0.0/16", "origins": [4, 226]}],
	  "importDeny": ["10.0.0.0/8"],
	  "reconnectSeconds": 2
	}`
	path := filepath.Join(t.TempDir(), "speaker.json")
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := daemon.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Speaker.AS() != 4 {
		t.Errorf("AS = %v", d.Speaker.AS())
	}
}
