// Command topogen builds the paper's simulation topologies (§5.1): it
// generates the synthetic Internet, applies the stub-sampling and
// pruning construction, and prints the resulting 25-, 46- and 63-AS
// graphs as edge lists or Graphviz DOT.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	var (
		seed  = flag.Int64("seed", 42, "generator seed")
		name  = flag.String("topology", "", "print only this topology (25, 46 or 63)")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list")
		stats = flag.Bool("stats", false, "append diameter/distance/clustering statistics")
	)
	flag.Parse()
	if err := run(*seed, *name, *dot, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(seed int64, only string, dot, stats bool) error {
	set, err := topology.BuildPaperTopologies(seed)
	if err != nil {
		return err
	}
	topos := []struct {
		name string
		s    *topology.SampleResult
	}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}}
	for _, t := range topos {
		if only != "" && only != t.name {
			continue
		}
		var err error
		if dot {
			err = t.s.WriteDOT(os.Stdout, "topology_"+t.name)
		} else {
			err = t.s.WriteEdgeList(os.Stdout, t.name+"-AS topology")
			fmt.Println()
		}
		if err != nil {
			return err
		}
		if stats {
			st := t.s.Graph.Stats()
			fmt.Printf("# stats: diameter=%d mean-distance=%.2f clustering=%.3f\n\n",
				st.Diameter, st.MeanDistance, st.Clustering)
		}
	}
	return nil
}
