// Command topogen builds simulation topologies. By default it follows
// the paper's §5.1 construction: generate the synthetic Internet, apply
// the stub-sampling and pruning, and print the resulting 25-, 46- and
// 63-AS graphs as edge lists or Graphviz DOT. With -powerlaw it instead
// grows a preferential-attachment AS graph of the requested size — the
// internet-scale topologies the 10k-70k simulations run on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/topology"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "generator seed")
		name     = flag.String("topology", "", "print only this paper topology (25, 46 or 63)")
		dot      = flag.Bool("dot", false, "emit Graphviz DOT instead of an edge list")
		stats    = flag.Bool("stats", false, "append degree-distribution and relation statistics")
		powerlaw = flag.Int("powerlaw", 0, "generate a preferential-attachment graph of this many ASes instead of the paper set")
		minDeg   = flag.Int("mindeg", 2, "power-law attachment degree (with -powerlaw)")
		statOnly = flag.Bool("stats-only", false, "suppress the edge list, print statistics only (implies -stats)")
	)
	flag.Parse()
	if *statOnly {
		*stats = true
	}
	var err error
	if *powerlaw > 0 {
		err = runPowerLaw(os.Stdout, *powerlaw, *minDeg, *seed, *dot, *stats, *statOnly)
	} else {
		err = run(*seed, *name, *dot, *stats)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(seed int64, only string, dot, stats bool) error {
	set, err := topology.BuildPaperTopologies(seed)
	if err != nil {
		return err
	}
	topos := []struct {
		name string
		s    *topology.SampleResult
	}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}}
	for _, t := range topos {
		if only != "" && only != t.name {
			continue
		}
		var err error
		if dot {
			err = t.s.WriteDOT(os.Stdout, "topology_"+t.name)
		} else {
			err = t.s.WriteEdgeList(os.Stdout, t.name+"-AS topology")
			fmt.Println()
		}
		if err != nil {
			return err
		}
		if stats {
			st := t.s.Graph.Stats()
			fmt.Printf("# stats: diameter=%d mean-distance=%.2f clustering=%.3f\n",
				st.Diameter, st.MeanDistance, st.Clustering)
			if err := writeDistribution(os.Stdout, t.s); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

func runPowerLaw(w io.Writer, n, minDeg int, seed int64, dot, stats, statOnly bool) error {
	res, err := topology.GeneratePowerLaw(topology.PowerLawParams{Nodes: n, MinDegree: minDeg}, seed)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("powerlaw-%d", n)
	if !statOnly {
		if dot {
			if err := res.WriteDOT(w, "topology_"+name); err != nil {
				return err
			}
		} else if err := res.WriteEdgeList(w, name+" topology"); err != nil {
			return err
		}
	}
	if stats {
		return writeDistribution(w, res)
	}
	return nil
}

// writeDistribution emits the degree distribution, the fitted power-law
// exponent, and the inferred business-relation counts as comment lines,
// so they survive in saved edge-list files.
func writeDistribution(w io.Writer, res *topology.SampleResult) error {
	g := res.Graph
	deg := g.Degrees()
	if _, err := fmt.Fprintf(w, "# degrees: %d nodes, %d edges, min/mean/max %d/%.2f/%d, alpha=%.2f\n",
		g.NumNodes(), g.NumEdges(), deg.Min, deg.Mean, deg.Max, g.PowerLawAlpha(deg.Min)); err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, "# degree-distribution:"); err != nil {
		return err
	}
	for _, dc := range g.DegreeDistribution() {
		if _, err := fmt.Fprintf(w, " %d:%d", dc[0], dc[1]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	rel := topology.InferRelations(g, res.Transit)
	pc, peer := rel.Counts()
	_, err := fmt.Fprintf(w, "# relations: %d customer-provider, %d peer-peer, %d transit ASes, %d stubs\n",
		pc, peer, len(res.TransitASes()), len(res.StubASes()))
	return err
}
