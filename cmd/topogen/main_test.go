package main

import "testing"

func TestRunAllFormats(t *testing.T) {
	if err := run(42, "25", false, true); err != nil {
		t.Fatalf("edge list: %v", err)
	}
	if err := run(42, "25", true, false); err != nil {
		t.Fatalf("dot: %v", err)
	}
	if err := run(42, "", false, false); err != nil {
		t.Fatalf("all: %v", err)
	}
}
