package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAllFormats(t *testing.T) {
	if err := run(42, "25", false, true); err != nil {
		t.Fatalf("edge list: %v", err)
	}
	if err := run(42, "25", true, false); err != nil {
		t.Fatalf("dot: %v", err)
	}
	if err := run(42, "", false, false); err != nil {
		t.Fatalf("all: %v", err)
	}
}

func TestRunPowerLawStats(t *testing.T) {
	var buf bytes.Buffer
	if err := runPowerLaw(&buf, 500, 2, 42, false, true, true); err != nil {
		t.Fatalf("power-law stats: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"# degrees:", "# degree-distribution:", "# relations:", "alpha="} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\n1 ") {
		t.Error("stats-only output contains edge list lines")
	}

	buf.Reset()
	if err := runPowerLaw(&buf, 50, 2, 42, false, false, false); err != nil {
		t.Fatalf("power-law edge list: %v", err)
	}
	if !strings.Contains(buf.String(), "powerlaw-50 topology") {
		t.Errorf("edge list header missing:\n%s", buf.String())
	}
}
