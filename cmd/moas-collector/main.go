// Command moas-collector runs a Route-Views-style passive route
// collector: it accepts BGP peerings on a listen address, archives
// periodic table snapshots to a directory in the dump exchange format,
// and (with -moasrr) checks every snapshot through the off-line MOAS
// monitor, printing alarms as they appear — the §4.2 off-line
// deployment, live.
//
// Two internet-scale ingest paths complement the TCP peerings:
// -mrt-replay feeds an archived MRT table dump / update trace through
// the same session→RIB→alarm path (span IDs point back at the archive
// records), and -ris-live consumes a RIS-Live-style streaming JSON feed
// with a bounded channel and an explicit backpressure policy.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/astypes"
	"repro/internal/collector"
	"repro/internal/monitor"
	"repro/internal/mrt"
	"repro/internal/mrt/rislive"
	"repro/internal/obs"
	"repro/internal/rpki"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:1790", "address accepting BGP peerings")
		dir         = flag.String("dir", "dumps", "snapshot output directory")
		interval    = flag.Duration("interval", time.Minute, "snapshot interval")
		check       = flag.Bool("check", false, "run the off-line MOAS monitor on every snapshot")
		metricsAddr = flag.String("metrics-addr", "", "admin endpoint address serving /metrics and /healthz")
		traceEvents = flag.Int("trace-events", 0, "flight-recorder ring size; nonzero serves /debug/trace and /debug/alarms on the admin endpoint")
		pprof       = flag.Bool("pprof", false, "mount net/http/pprof on the admin endpoint")
		mrtReplay   = flag.String("mrt-replay", "", "MRT file (raw, .gz or .bz2) to replay through the RIB and monitor at startup")
		risLive     = flag.String("ris-live", "", "RIS-Live streaming JSON endpoint to ingest (implies -check)")
		risBuffer   = flag.Int("ris-buffer", rislive.DefaultBuffer, "bounded-channel capacity for -ris-live")
		risPolicy   = flag.String("ris-policy", "block", "backpressure policy for -ris-live: block or drop")
		roaFile     = flag.String("roa-file", "", "ROA file (prefix=origin[@maxlen],...) cross-validating monitor alarms against the RPKI")
		rtrAddr     = flag.String("rtr-addr", "", "RTR-style cache server keeping the ROA store synchronized")
	)
	flag.Parse()
	if *traceEvents < 0 {
		fmt.Fprintln(os.Stderr, "moas-collector: negative -trace-events")
		os.Exit(1)
	}
	policy, err := rislive.ParsePolicy(*risPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moas-collector:", err)
		os.Exit(1)
	}
	cfg := runConfig{
		listen:      *listen,
		dir:         *dir,
		interval:    *interval,
		check:       *check,
		metricsAddr: *metricsAddr,
		traceEvents: *traceEvents,
		pprof:       *pprof,
		mrtReplay:   *mrtReplay,
		risLive:     *risLive,
		risBuffer:   *risBuffer,
		risPolicy:   policy,
		roaFile:     *roaFile,
		rtrAddr:     *rtrAddr,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "moas-collector:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	listen      string
	dir         string
	interval    time.Duration
	check       bool
	metricsAddr string
	traceEvents int
	pprof       bool
	mrtReplay   string
	risLive     string
	risBuffer   int
	risPolicy   rislive.Policy
	roaFile     string
	rtrAddr     string
}

func run(cfg runConfig) error {
	reg := telemetry.NewRegistry("moas")
	telemetry.RegisterBuildInfo(reg)
	var rec *trace.Recorder
	if cfg.traceEvents > 0 {
		rec = trace.NewRecorder(cfg.traceEvents)
	}

	// The detection-latency observatory: every ingest path (TCP
	// peerings, MRT replay, RIS-Live) stamps messages against this
	// recorder, and /debug/status serves the per-stage breakdown.
	obsRec := obs.NewRecorder()
	ready := &telemetry.Readiness{}
	var replay *obs.Progress
	if cfg.mrtReplay != "" {
		// A collector still replaying its archive serves a partial
		// table; hold readiness until the replay lands.
		replay = &obs.Progress{}
		ready.Register("mrt-replay", telemetry.NotSynced(replay.Done, "replay not finished"))
	}

	c := collector.New(collector.Config{RouterID: 6447, Telemetry: reg, Trace: rec, Obs: obsRec})
	defer c.Close()

	// The stage is built (and its readiness probe registered) before
	// the admin endpoint starts serving /readyz.
	var stage *rislive.Stage
	if cfg.risLive != "" {
		stage = rislive.NewStage(rislive.Config{
			URL:      cfg.risLive,
			Buffer:   cfg.risBuffer,
			Policy:   cfg.risPolicy,
			Registry: reg,
			Obs:      obsRec,
		})
		ready.Register("ris-live", telemetry.NotSynced(stage.Connected, "stream not connected"))
	}

	if cfg.metricsAddr != "" {
		sampler := obs.NewSampler(0, 0)
		sampler.Start()
		defer sampler.Close()
		adminCfg := telemetry.AdminConfig{
			Registry: reg,
			Pprof:    cfg.pprof,
			Ready:    ready.Check,
			Debug:    make(map[string]http.Handler),
		}
		if rec != nil {
			for pattern, h := range trace.Routes(rec) {
				adminCfg.Debug[pattern] = h
			}
		}
		adminCfg.Debug["/debug/status"] = obs.NewStatusHandler(obs.StatusConfig{
			Registry: reg,
			Stages:   obsRec,
			Runtime:  sampler,
			Replay:   replay,
			Ready:    ready.Check,
		})
		adminCfg.Debug["/debug/runtime"] = sampler
		admin, err := telemetry.ServeAdmin(cfg.metricsAddr, adminCfg)
		if err != nil {
			return err
		}
		defer admin.Close()
		log.Printf("moas-collector: metrics at http://%s/metrics", admin.Addr())
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	c.Listen(ln)
	log.Printf("moas-collector: AS %d listening on %s", collector.CollectorASN, ln.Addr())

	// Any ROA source turns on RPKI/ROV cross-validation: monitor alarms
	// then carry a benign-moas / likely-misconfig / likely-hijack class.
	var roaStore *rpki.Store
	if cfg.roaFile != "" || cfg.rtrAddr != "" {
		roaStore = rpki.NewStore()
		if cfg.roaFile != "" {
			roas, err := rpki.ParseFile(cfg.roaFile)
			if err != nil {
				return err
			}
			for _, r := range roas {
				roaStore.Add(r)
			}
			log.Printf("moas-collector: loaded %d ROAs from %s", roaStore.Len(), cfg.roaFile)
		}
	}

	// The monitor exists whenever anything feeds it: snapshot checking,
	// an MRT replay, or a live stream.
	var mon *monitor.Monitor
	if cfg.check || cfg.mrtReplay != "" || cfg.risLive != "" {
		monOpts := []monitor.Option{monitor.WithTelemetry(reg), monitor.WithObs(obsRec)}
		if rec != nil {
			monOpts = append(monOpts, monitor.WithTrace(rec))
		}
		if roaStore != nil {
			monOpts = append(monOpts, monitor.WithRPKI(roaStore))
		}
		mon = monitor.New(monOpts...)
	}

	if cfg.mrtReplay != "" {
		if err := replayMRT(c, mon, cfg.mrtReplay, replay); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if cfg.rtrAddr != "" {
		client, err := rpki.NewClient(rpki.ClientConfig{
			Addr:     cfg.rtrAddr,
			Store:    roaStore,
			Registry: reg,
		})
		if err != nil {
			return err
		}
		go client.Run(ctx)
		log.Printf("moas-collector: syncing ROAs from RTR cache %s", cfg.rtrAddr)
	}
	if stage != nil {
		go func() {
			if err := stage.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("moas-collector: ris-live stream: %v", err)
			}
		}()
		go func() {
			for ev := range stage.Events() {
				// The channel hop is this path's session stage: the time
				// the event waited for the consumer.
				obsRec.Cross(&ev.Stamp, obs.StageSession)
				c.Inject(ev.PeerASN, &ev.Update)
				obsRec.Cross(&ev.Stamp, obs.StageRIB)
				mon.ObserveUpdateStamp("ris:"+ev.Host, &ev.Update, &ev.Stamp)
			}
		}()
		log.Printf("moas-collector: ingesting %s (buffer %d, policy %s)",
			cfg.risLive, cfg.risBuffer, cfg.risPolicy)
	}

	var opts []collector.ArchiverOption
	if cfg.check && mon != nil {
		opts = append(opts, collector.WithMonitor(mon, func(a monitor.Alarm) {
			log.Printf("ALARM [%s] class=%s: %s", a.Vantage, a.Class, a.Conflict.Error())
		}))
	}
	arch, err := collector.NewArchiver(c, cfg.dir, cfg.interval, opts...)
	if err != nil {
		return err
	}
	defer arch.Close()
	if err := arch.Start(); err != nil {
		return err
	}
	log.Printf("moas-collector: archiving to %s every %s", cfg.dir, cfg.interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	cancel()
	if stage != nil {
		cnt := stage.Counters()
		log.Printf("moas-collector: ris-live received %d delivered %d dropped %d parse-errors %d reconnects %d",
			cnt.Received, cnt.Delivered, cnt.Dropped, cnt.ParseErrors, cnt.Reconnects)
	}
	log.Println("moas-collector: final snapshot and shutdown")
	if name, err := arch.SnapshotNow(); err == nil {
		log.Println("moas-collector: wrote", name)
	}
	return nil
}

// replayMRT streams one archive through the monitor, mirroring every
// record into the collector RIB so subsequent snapshots include the
// replayed table.
func replayMRT(c *collector.Collector, mon *monitor.Monitor, path string, progress *obs.Progress) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		progress.SetTotalBytes(uint64(fi.Size()))
	}
	start := time.Now()
	var inject wire.Update
	res, err := mon.ReplayMRTFunc("mrt:"+path, progress.CountReader(f), func(rec *mrt.Record) {
		progress.AddRecords(1)
		switch rec.Kind {
		case mrt.KindRIB:
			// Each RIB entry becomes a one-prefix announcement from its
			// peer; Inject clones, so reusing one scratch update is safe.
			for i := range rec.Entries {
				e := &rec.Entries[i]
				inject = wire.Update{NLRI: []astypes.Prefix{rec.Prefix}}
				inject.Attrs.ASPath = e.Path
				inject.Attrs.Communities = e.Communities
				inject.Attrs.HasOrigin = true
				inject.Attrs.Origin = e.Origin
				inject.Attrs.HasNextHop = true
				inject.Attrs.NextHop = e.NextHop
				c.Inject(e.PeerAS, &inject)
			}
		case mrt.KindMessage:
			if rec.Update != nil {
				c.Inject(rec.PeerAS, rec.Update)
			}
		}
	})
	if err != nil {
		return fmt.Errorf("replay %s: %w", path, err)
	}
	progress.MarkDone()
	log.Printf("moas-collector: replayed %s in %s: %d records (%d RIB prefixes, %d entries, %d updates), %d skipped, %d malformed, %d AS4-substituted",
		path, time.Since(start).Round(time.Millisecond), res.Stats.Records, res.Stats.RIBPrefixes,
		res.Stats.RIBEntries, res.Stats.Updates, res.Stats.Skipped, res.Malformed, res.Stats.AS4Substituted)
	return nil
}
