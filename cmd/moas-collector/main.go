// Command moas-collector runs a Route-Views-style passive route
// collector: it accepts BGP peerings on a listen address, archives
// periodic table snapshots to a directory in the dump exchange format,
// and (with -moasrr) checks every snapshot through the off-line MOAS
// monitor, printing alarms as they appear — the §4.2 off-line
// deployment, live.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/monitor"
	"repro/internal/telemetry"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:1790", "address accepting BGP peerings")
		dir         = flag.String("dir", "dumps", "snapshot output directory")
		interval    = flag.Duration("interval", time.Minute, "snapshot interval")
		check       = flag.Bool("check", false, "run the off-line MOAS monitor on every snapshot")
		metricsAddr = flag.String("metrics-addr", "", "admin endpoint address serving /metrics and /healthz")
	)
	flag.Parse()
	if err := run(*listen, *dir, *interval, *check, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "moas-collector:", err)
		os.Exit(1)
	}
}

func run(listen, dir string, interval time.Duration, check bool, metricsAddr string) error {
	reg := telemetry.NewRegistry("moas")
	c := collector.New(collector.Config{RouterID: 6447, Telemetry: reg})
	defer c.Close()
	if metricsAddr != "" {
		admin, err := telemetry.ServeAdmin(metricsAddr, telemetry.AdminConfig{Registry: reg})
		if err != nil {
			return err
		}
		defer admin.Close()
		log.Printf("moas-collector: metrics at http://%s/metrics", admin.Addr())
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	c.Listen(ln)
	log.Printf("moas-collector: AS %d listening on %s", collector.CollectorASN, ln.Addr())

	var opts []collector.ArchiverOption
	if check {
		mon := monitor.New(monitor.WithTelemetry(reg))
		opts = append(opts, collector.WithMonitor(mon, func(a monitor.Alarm) {
			log.Printf("ALARM [%s]: %s", a.Vantage, a.Conflict.Error())
		}))
	}
	arch, err := collector.NewArchiver(c, dir, interval, opts...)
	if err != nil {
		return err
	}
	defer arch.Close()
	if err := arch.Start(); err != nil {
		return err
	}
	log.Printf("moas-collector: archiving to %s every %s", dir, interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("moas-collector: final snapshot and shutdown")
	if name, err := arch.SnapshotNow(); err == nil {
		log.Println("moas-collector: wrote", name)
	}
	return nil
}
