// Command moas-collector runs a Route-Views-style passive route
// collector: it accepts BGP peerings on a listen address, archives
// periodic table snapshots to a directory in the dump exchange format,
// and (with -moasrr) checks every snapshot through the off-line MOAS
// monitor, printing alarms as they appear — the §4.2 off-line
// deployment, live.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collector"
	"repro/internal/monitor"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:1790", "address accepting BGP peerings")
		dir         = flag.String("dir", "dumps", "snapshot output directory")
		interval    = flag.Duration("interval", time.Minute, "snapshot interval")
		check       = flag.Bool("check", false, "run the off-line MOAS monitor on every snapshot")
		metricsAddr = flag.String("metrics-addr", "", "admin endpoint address serving /metrics and /healthz")
		traceEvents = flag.Int("trace-events", 0, "flight-recorder ring size; nonzero serves /debug/trace and /debug/alarms on the admin endpoint")
		pprof       = flag.Bool("pprof", false, "mount net/http/pprof on the admin endpoint")
	)
	flag.Parse()
	if *traceEvents < 0 {
		fmt.Fprintln(os.Stderr, "moas-collector: negative -trace-events")
		os.Exit(1)
	}
	if err := run(*listen, *dir, *interval, *check, *metricsAddr, *traceEvents, *pprof); err != nil {
		fmt.Fprintln(os.Stderr, "moas-collector:", err)
		os.Exit(1)
	}
}

func run(listen, dir string, interval time.Duration, check bool, metricsAddr string, traceEvents int, pprof bool) error {
	reg := telemetry.NewRegistry("moas")
	telemetry.RegisterBuildInfo(reg)
	var rec *trace.Recorder
	if traceEvents > 0 {
		rec = trace.NewRecorder(traceEvents)
	}
	c := collector.New(collector.Config{RouterID: 6447, Telemetry: reg, Trace: rec})
	defer c.Close()
	if metricsAddr != "" {
		adminCfg := telemetry.AdminConfig{Registry: reg, Pprof: pprof}
		if rec != nil {
			adminCfg.Debug = trace.Routes(rec)
		}
		admin, err := telemetry.ServeAdmin(metricsAddr, adminCfg)
		if err != nil {
			return err
		}
		defer admin.Close()
		log.Printf("moas-collector: metrics at http://%s/metrics", admin.Addr())
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	c.Listen(ln)
	log.Printf("moas-collector: AS %d listening on %s", collector.CollectorASN, ln.Addr())

	var opts []collector.ArchiverOption
	if check {
		monOpts := []monitor.Option{monitor.WithTelemetry(reg)}
		if rec != nil {
			monOpts = append(monOpts, monitor.WithTrace(rec))
		}
		mon := monitor.New(monOpts...)
		opts = append(opts, collector.WithMonitor(mon, func(a monitor.Alarm) {
			log.Printf("ALARM [%s]: %s", a.Vantage, a.Conflict.Error())
		}))
	}
	arch, err := collector.NewArchiver(c, dir, interval, opts...)
	if err != nil {
		return err
	}
	defer arch.Close()
	if err := arch.Start(); err != nil {
		return err
	}
	log.Printf("moas-collector: archiving to %s every %s", dir, interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("moas-collector: final snapshot and shutdown")
	if name, err := arch.SnapshotNow(); err == nil {
		log.Println("moas-collector: wrote", name)
	}
	return nil
}
