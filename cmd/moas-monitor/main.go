// Command moas-monitor is the off-line MOAS checking process of §4.2:
// it reads routing-table dump files (text format, one per vantage
// point), checks MOAS-list consistency across them, and reports the
// multi-origin cases and alarms. With -moasrr it classifies each case
// as valid or invalid against a MOASRR database file of lines
//
//	<prefix>=<asn>[,<asn>...]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/dnsval"
	"repro/internal/monitor"
	"repro/internal/rpki"
	"repro/internal/telemetry"
)

func main() {
	var (
		moasrr      = flag.String("moasrr", "", "MOASRR database file (prefix=asn,asn lines)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics with the run's counters after processing, until interrupted")
		verbose     = flag.Bool("v", false, "also list every alarm")
		roaFile     = flag.String("roa-file", "", "ROA file (prefix=origin[@maxlen],...) cross-validating alarms against the RPKI")
		rtrAddr     = flag.String("rtr-addr", "", "RTR-style cache server to pull ROAs from before processing")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: moas-monitor [-moasrr file] [-roa-file file | -rtr-addr host:port] dump.txt [dump.txt ...]")
		os.Exit(2)
	}
	if err := run(*moasrr, *metricsAddr, *roaFile, *rtrAddr, *verbose, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "moas-monitor:", err)
		os.Exit(1)
	}
}

func run(moasrrPath, metricsAddr, roaFile, rtrAddr string, verbose bool, dumps []string) error {
	reg := telemetry.NewRegistry("moas")
	telemetry.RegisterBuildInfo(reg)
	opts := []monitor.Option{monitor.WithTelemetry(reg)}
	if moasrrPath != "" {
		store, err := loadMOASRR(moasrrPath)
		if err != nil {
			return err
		}
		opts = append(opts, monitor.WithResolver(store))
	}
	roaStore, err := loadROAs(roaFile, rtrAddr, reg)
	if err != nil {
		return err
	}
	if roaStore != nil {
		opts = append(opts, monitor.WithRPKI(roaStore))
	}
	m := monitor.New(opts...)
	for _, path := range dumps {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = m.ReadDumpStream(filepath.Base(path), f)
		f.Close()
		if err != nil {
			return err
		}
	}

	cases := m.MOASCases()
	fmt.Printf("%d MOAS cases across %d dump(s)\n", len(cases), len(dumps))
	for _, c := range cases {
		status := ""
		if c.Known {
			status = " [valid]"
			if c.Invalid {
				status = " [INVALID]"
			}
		}
		origins := make([]string, len(c.Origins))
		for i, o := range c.Origins {
			origins[i] = o.String()
		}
		fmt.Printf("  %s origins {%s}%s\n", c.Prefix, strings.Join(origins, ", "), status)
	}

	alarms := m.Alarms()
	fmt.Printf("%d MOAS-list alarm(s)\n", len(alarms))
	if roaStore != nil {
		var byClass [rpki.NumClasses]int
		for _, a := range alarms {
			byClass[a.Class]++
		}
		fmt.Printf("  classes: %d %s, %d %s, %d %s\n",
			byClass[rpki.ClassBenignMOAS], rpki.ClassBenignMOAS,
			byClass[rpki.ClassLikelyMisconfig], rpki.ClassLikelyMisconfig,
			byClass[rpki.ClassLikelyHijack], rpki.ClassLikelyHijack)
	}
	for _, g := range m.AlarmSummary() {
		origins := make([]string, len(g.Origins))
		for i, o := range g.Origins {
			origins[i] = o.String()
		}
		fmt.Printf("  %s: %d alarm(s), conflicting origins {%s} via %s\n",
			g.Prefix, g.Count, strings.Join(origins, ", "), strings.Join(g.Vantages, ", "))
	}
	if verbose {
		for _, a := range alarms {
			if roaStore != nil {
				fmt.Printf("  [%s] class=%s %s\n", a.Vantage, a.Class, a.Conflict.Error())
			} else {
				fmt.Printf("  [%s] %s\n", a.Vantage, a.Conflict.Error())
			}
		}
	}
	if metricsAddr != "" {
		// Batch tool: the scrape endpoint exposes this run's counters
		// for collection, then the process waits for an interrupt.
		admin, err := telemetry.ServeAdmin(metricsAddr, telemetry.AdminConfig{Registry: reg})
		if err != nil {
			return err
		}
		defer admin.Close()
		log.Printf("moas-monitor: metrics at http://%s/metrics (interrupt to exit)", admin.Addr())
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
	}
	return nil
}

// loadROAs assembles the ROA store from a file, an RTR cache, or both.
// The RTR pull is batch-shaped: connect, wait for the initial full
// sync, then disconnect — the dumps are then judged against that
// snapshot.
func loadROAs(roaFile, rtrAddr string, reg *telemetry.Registry) (*rpki.Store, error) {
	if roaFile == "" && rtrAddr == "" {
		return nil, nil
	}
	store := rpki.NewStore()
	if roaFile != "" {
		roas, err := rpki.ParseFile(roaFile)
		if err != nil {
			return nil, err
		}
		for _, r := range roas {
			store.Add(r)
		}
	}
	if rtrAddr != "" {
		client, err := rpki.NewClient(rpki.ClientConfig{Addr: rtrAddr, Store: store, Registry: reg})
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done := make(chan struct{})
		go func() {
			defer close(done)
			client.Run(ctx)
		}()
		for !client.Synced() {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("rtr cache %s: no full sync within 30s", rtrAddr)
			}
			time.Sleep(10 * time.Millisecond)
		}
		cancel()
		<-done
		log.Printf("moas-monitor: pulled %d ROAs from RTR cache %s", store.Len(), rtrAddr)
	}
	return store, nil
}

func loadMOASRR(path string) (*dnsval.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	store := dnsval.NewStore()
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		prefixStr, asnsStr, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("%s:%d: want prefix=asn,asn", path, lineNo)
		}
		prefix, err := astypes.ParsePrefix(strings.TrimSpace(prefixStr))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		var origins []astypes.ASN
		for _, s := range strings.Split(asnsStr, ",") {
			asn, err := astypes.ParseASN(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
			}
			origins = append(origins, asn)
		}
		store.Register(prefix, core.NewList(origins...))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	return store, nil
}
