package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/astypes"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadMOASRR(t *testing.T) {
	path := writeFile(t, "moasrr.txt", `
# comment and blank lines are skipped

131.179.0.0/16 = 4, 226
10.0.0.0/8=7
`)
	store, err := loadMOASRR(path)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("Len = %d", store.Len())
	}
	list, ok := store.ValidOrigins(astypes.MustPrefix(0x83b30000, 16))
	if !ok || !list.Contains(4) || !list.Contains(226) {
		t.Errorf("record = %v, %v", list, ok)
	}
}

func TestLoadMOASRRErrors(t *testing.T) {
	cases := map[string]string{
		"no equals":  "131.179.0.0/16 4\n",
		"bad prefix": "banana=4\n",
		"bad asn":    "10.0.0.0/8=x\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeFile(t, "bad.txt", content)
			if _, err := loadMOASRR(path); err == nil {
				t.Error("bad database accepted")
			}
		})
	}
	if _, err := loadMOASRR(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dump := writeFile(t, "dump.txt",
		"# dump day=1 date=2001-04-06 entries=2\n"+
			"131.179.0.0/16|701 4\n"+
			"131.179.0.0/16|1239 52\n")
	db := writeFile(t, "moasrr.txt", "131.179.0.0/16=4\n")
	if err := run(db, "", "", "", true, []string{dump}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run("", "", "", "", false, []string{dump}); err != nil {
		t.Fatalf("run without db: %v", err)
	}
	roas := writeFile(t, "roas.txt", "131.179.0.0/16=4\n")
	if err := run("", "", roas, "", true, []string{dump}); err != nil {
		t.Fatalf("run with ROAs: %v", err)
	}
	if err := run("", "", filepath.Join(t.TempDir(), "absent"), "", false, []string{dump}); err == nil {
		t.Error("missing ROA file accepted")
	}
	if err := run("", "", "", "", false, []string{"/does/not/exist"}); err == nil {
		t.Error("missing dump accepted")
	}
}
