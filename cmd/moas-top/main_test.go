package main

import (
	"strings"
	"testing"

	"repro/internal/astypes"
	"repro/internal/core"
	"repro/internal/e2etest"
)

// TestTopRendersLiveSession boots the loopback deployment, drives one
// announcement through it, and points moas-top's core loop at the
// validator's /debug/status — the viewer must render a frame with the
// stage-latency table and rate lines from a live admin endpoint.
func TestTopRendersLiveSession(t *testing.T) {
	prefix, err := astypes.ParsePrefix("203.0.113.0/24")
	if err != nil {
		t.Fatal(err)
	}
	h := e2etest.Boot(t, "203.0.113.0/24", 65001)
	h.StartSpeaker(t, 65001, prefix, core.List{})
	e2etest.WaitFor(t, func() bool {
		return h.Validator.Obs().StageCount(0) > 0
	}, "a decoded update to land in the observatory")

	var buf strings.Builder
	err = run(topConfig{addr: h.MetricsAddr, frames: 2, interval: 1, clear: false}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"moas-top", "ready",
		"stage", "decode", "session", "validate", "rib", "alarm",
		"rates (/s):",
		"goroutines=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
}

// TestTopFirstFetchError: an unreachable endpoint must fail fast, not
// render garbage.
func TestTopFirstFetchError(t *testing.T) {
	var buf strings.Builder
	if err := run(topConfig{addr: "127.0.0.1:1", frames: 1}, &buf); err == nil {
		t.Fatal("run against a dead endpoint succeeded")
	}
}
