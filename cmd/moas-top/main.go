// Command moas-top is a terminal viewer for the detection-latency
// observatory: it polls a daemon or collector's /debug/status endpoint
// and renders message-rate deltas, per-stage latency quantiles, the
// RIS-Live stream-lag watermark, and the top alarm classes — a `top`
// for the paper's detection pipeline.
//
// Usage:
//
//	moas-top -addr 127.0.0.1:9999           # refresh every 2s
//	moas-top -addr 127.0.0.1:9999 -once     # one frame and exit
//	moas-top -addr 127.0.0.1:9999 -n 5      # five frames and exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9999", "admin endpoint host:port serving /debug/status")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval")
		frames   = flag.Int("n", 0, "exit after this many frames (0 = run until interrupted)")
		once     = flag.Bool("once", false, "render one frame and exit (same as -n 1)")
		clear    = flag.Bool("clear", true, "clear the terminal between frames")
	)
	flag.Parse()
	cfg := topConfig{
		addr:     *addr,
		interval: *interval,
		frames:   *frames,
		clear:    *clear,
	}
	if *once {
		cfg.frames = 1
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "moas-top:", err)
		os.Exit(1)
	}
}

type topConfig struct {
	addr     string
	interval time.Duration
	frames   int
	clear    bool
}

// run polls /debug/status and renders frames to w until the frame
// budget is spent. It is the testable core: main only parses flags.
func run(cfg topConfig, w io.Writer) error {
	if cfg.interval <= 0 {
		cfg.interval = 2 * time.Second
	}
	timeout := cfg.interval
	if timeout < 2*time.Second {
		timeout = 2 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	url := "http://" + cfg.addr + "/debug/status?format=json"
	var prev *frame
	for n := 0; cfg.frames == 0 || n < cfg.frames; n++ {
		if n > 0 {
			time.Sleep(cfg.interval)
		}
		doc, err := fetchStatus(client, url)
		if err != nil {
			if n == 0 {
				return err
			}
			fmt.Fprintf(w, "moas-top: %v (retrying)\n", err)
			continue
		}
		cur := &frame{doc: doc, at: time.Now()}
		if cfg.clear {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		render(w, cfg.addr, cur, prev)
		prev = cur
	}
	return nil
}

// frame is one scrape with its arrival time, kept for rate deltas.
type frame struct {
	doc *obs.StatusDoc
	at  time.Time
}

func fetchStatus(client *http.Client, url string) (*obs.StatusDoc, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var doc obs.StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return &doc, nil
}

// render draws one frame: header, rates, stage table, lag, replay,
// alarm classes, runtime vitals.
func render(w io.Writer, addr string, cur, prev *frame) {
	doc := cur.doc
	ready := "-"
	if doc.Ready != nil {
		if *doc.Ready {
			ready = "ready"
		} else {
			ready = "NOT READY: " + doc.ReadyError
		}
	}
	fmt.Fprintf(w, "moas-top  %s  up %s  %s\n",
		addr, fmtDur(time.Duration(doc.UptimeSeconds*float64(time.Second))), ready)

	// Rates: per-second deltas of the busiest counters since the last
	// frame; absolute totals on the first one.
	rates := counterRates(cur, prev)
	if len(rates) > 0 {
		fmt.Fprintf(w, "\nrates (/s):\n")
		for _, r := range rates {
			fmt.Fprintf(w, "  %-48s %10.1f\n", r.name, r.perSec)
		}
	}

	if len(doc.Stages) > 0 {
		fmt.Fprintf(w, "\nstage        count        p50        p99        max\n")
		for _, st := range doc.Stages {
			fmt.Fprintf(w, "%-9s %8d %10s %10s %10s\n",
				st.Stage, st.Count, fmtNs(st.P50Ns), fmtNs(st.P99Ns), fmtNs(st.MaxNs))
		}
	}

	if doc.LagMs != nil {
		fmt.Fprintf(w, "\nstream lag: %dms\n", *doc.LagMs)
	}
	if doc.Replay != nil {
		fmt.Fprintf(w, "replay: %d records (%.1f%%) done=%v\n",
			doc.Replay.Records, doc.Replay.Percent, doc.Replay.Done)
	}

	if len(doc.AlarmClasses) > 0 {
		fmt.Fprintf(w, "\nalarm classes:\n")
		for _, c := range topClasses(doc.AlarmClasses, 5) {
			fmt.Fprintf(w, "  %-24s %g\n", c, doc.AlarmClasses[c])
		}
	}

	if doc.Runtime != nil {
		fmt.Fprintf(w, "\ngoroutines=%d heap=%s gc=%d lastPause=%s\n",
			doc.Runtime.Goroutines, fmtBytes(doc.Runtime.HeapAllocBytes),
			doc.Runtime.NumGC, fmtNs(int64(doc.Runtime.LastGCPauseNs)))
	}
}

type rate struct {
	name   string
	perSec float64
}

// counterRates ranks counters by their per-second delta between two
// frames (totals on the first frame), keeping the top eight so the
// frame stays one screen tall.
func counterRates(cur, prev *frame) []rate {
	var out []rate
	if prev == nil {
		for name, v := range cur.doc.Counters {
			out = append(out, rate{name, v})
		}
	} else {
		dt := cur.at.Sub(prev.at).Seconds()
		if dt <= 0 {
			return nil
		}
		for name, v := range cur.doc.Counters {
			out = append(out, rate{name, (v - prev.doc.Counters[name]) / dt})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].perSec != out[j].perSec {
			return out[i].perSec > out[j].perSec
		}
		return out[i].name < out[j].name
	})
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

// topClasses returns the n highest-count alarm classes, ties broken by
// name.
func topClasses(m map[string]float64, n int) []string {
	classes := make([]string, 0, len(m))
	for c := range m {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		if m[classes[i]] != m[classes[j]] {
			return m[classes[i]] > m[classes[j]]
		}
		return classes[i] < classes[j]
	})
	if len(classes) > n {
		classes = classes[:n]
	}
	return classes
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtNs(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/float64(time.Second))
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/float64(time.Millisecond))
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.1fµs", float64(ns)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
