// Command moas-sim reproduces the paper's simulation study (§5). It
// regenerates the data series behind:
//
//	-experiment 1: Figure 9  — effectiveness of the MOAS list on the
//	               46-AS topology (normal BGP vs full detection, one and
//	               two origin ASes);
//	-experiment 2: Figure 10 — the same comparison across the 25-, 46-
//	               and 63-AS topologies;
//	-experiment 3: Figure 11 — partial (50%) vs full deployment on the
//	               46- and 63-AS topologies;
//	-experiment 4: internet scale — the same hijack sweep on
//	               preferential-attachment power-law topologies of
//	               -scale ASes (default 10000,30000,70000), the regime
//	               the compact simulation engine exists for.
//
// Each printed row is one X position of the figure: the attacker
// percentage and the mean percentage of non-attacker ASes adopting a
// false route over the paper's 15-run scheme.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiment"
	"repro/internal/topology"
)

func main() {
	var (
		exp     = flag.Int("experiment", 1, "experiment number (1, 2 or 3)")
		seed    = flag.Int64("seed", 42, "master seed (topologies and selections)")
		origins = flag.Int("origins", 0, "origin AS count (0 = both 1 and 2, as in the paper)")
		maxPct  = flag.Float64("max-attacker-pct", 35, "largest attacker percentage to sweep")
		cold    = flag.Bool("cold-start", true, "announce valid routes and attack simultaneously")
		forge   = flag.Bool("forge-list", false, "attackers forge a superset MOAS list (§4.1)")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		par     = flag.Int("parallelism", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
		roaCov  = flag.Float64("roa-coverage", 0, "fraction of runs whose victim prefix is covered by ROAs; nonzero adds per-mode false-alarm-rate tables from RPKI/ROV alarm classification")
		traced  = flag.Bool("trace", false, "replay one hijack on the 25-AS topology with the flight recorder attached and print the propagation timeline, per-AS adoption, and forensic alarm bundles")
		scale   = flag.String("scale", "", "comma-separated power-law topology sizes for -experiment 4 (default 10000,30000,70000)")
	)
	flag.Parse()
	outputCSV = *csvOut
	roaCoverage = *roaCov
	if *scale != "" {
		sizes, err := parseScales(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "moas-sim:", err)
			os.Exit(2)
		}
		internetScales = sizes
	}
	if roaCoverage < 0 || roaCoverage > 1 {
		fmt.Fprintln(os.Stderr, "moas-sim: -roa-coverage out of [0,1]")
		os.Exit(2)
	}
	if *traced {
		if err := runTrace(os.Stdout, *seed, *forge); err != nil {
			fmt.Fprintln(os.Stderr, "moas-sim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *seed, *origins, *maxPct, *cold, *forge, *par); err != nil {
		fmt.Fprintln(os.Stderr, "moas-sim:", err)
		os.Exit(1)
	}
}

func run(exp int, seed int64, origins int, maxPct float64, cold, forge bool, parallelism int) error {
	if parallelism < 0 {
		return fmt.Errorf("parallelism %d must be >= 0 (0 = GOMAXPROCS)", parallelism)
	}
	sweepParallelism = parallelism
	originCounts := []int{1, 2}
	if origins > 0 {
		originCounts = []int{origins}
	}
	if exp == 4 {
		return runInternet(originCounts, seed, cold, forge)
	}
	set, err := topology.BuildPaperTopologies(seed)
	if err != nil {
		return err
	}
	switch exp {
	case 1:
		return runFigure9(set, originCounts, seed, maxPct, cold, forge)
	case 2:
		return runFigure10(set, originCounts, seed, maxPct, cold, forge)
	case 3:
		return runFigure11(set, seed, maxPct, cold, forge)
	default:
		return fmt.Errorf("unknown experiment %d (want 1, 2, 3 or 4)", exp)
	}
}

// parseScales parses the -scale list ("10000,30000" -> sizes).
func parseScales(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 4 {
			return nil, fmt.Errorf("bad -scale entry %q (want integers >= 4)", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// runInternet sweeps forged-origin hijacks on power-law topologies of
// internetScales ASes. Attacker counts are absolute (a handful of rogue
// ASes, the realistic internet-scale threat) rather than percentages,
// and each point averages 3 scenarios instead of the paper's 15 to keep
// wall-clock sane at 70k nodes.
func runInternet(originCounts []int, seed int64, cold, forge bool) error {
	scales := internetScales
	if len(scales) == 0 {
		scales = []int{10_000, 30_000, 70_000}
	}
	fmt.Println("Experiment 4: internet-scale power-law topologies")
	modes := []experiment.ModeSpec{
		{Label: "Normal BGP", Detection: experiment.DetectionOff},
		{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
	}
	for _, n := range scales {
		topo, err := topology.GeneratePowerLaw(topology.DefaultPowerLawParams(n), seed)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("powerlaw-%d", n)
		for _, o := range originCounts {
			fmt.Printf("\n%d-AS topology (%d origin AS%s):\n", n, o, plural(o))
			counts := []int{1, 2, 4}
			if err := sweepAndPrintCounts(topo, name, o, modes, seed, counts, cold, forge, 1, 3); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFigure9(set *topology.PaperSet, originCounts []int, seed int64, maxPct float64, cold, forge bool) error {
	fmt.Println("Experiment 1 (Figure 9): Spoof-resilience in the 46-AS topology")
	modes := []experiment.ModeSpec{
		{Label: "Normal BGP", Detection: experiment.DetectionOff},
		{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
	}
	for _, n := range originCounts {
		fmt.Printf("\n(%d origin AS%s)\n", n, plural(n))
		if err := sweepAndPrint(set.T46, "46", n, modes, seed, maxPct, cold, forge); err != nil {
			return err
		}
	}
	return nil
}

func runFigure10(set *topology.PaperSet, originCounts []int, seed int64, maxPct float64, cold, forge bool) error {
	fmt.Println("Experiment 2 (Figure 10): 25-AS vs 46-AS vs 63-AS topologies")
	modes := []experiment.ModeSpec{
		{Label: "Normal BGP", Detection: experiment.DetectionOff},
		{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
	}
	for _, n := range originCounts {
		fmt.Printf("\n(%d origin AS%s)\n", n, plural(n))
		for _, topo := range []struct {
			name string
			s    *topology.SampleResult
		}{{"25", set.T25}, {"46", set.T46}, {"63", set.T63}} {
			fmt.Printf("\n%s-AS topology:\n", topo.name)
			if err := sweepAndPrint(topo.s, topo.name, n, modes, seed, maxPct, cold, forge); err != nil {
				return err
			}
		}
	}
	return nil
}

func runFigure11(set *topology.PaperSet, seed int64, maxPct float64, cold, forge bool) error {
	fmt.Println("Experiment 3 (Figure 11): partial vs complete deployment")
	modes := []experiment.ModeSpec{
		{Label: "Normal BGP", Detection: experiment.DetectionOff},
		{Label: "Half MOAS Detection", Detection: experiment.DetectionPartial, DeployFraction: 0.5},
		{Label: "Full MOAS Detection", Detection: experiment.DetectionFull},
	}
	for _, topo := range []struct {
		name string
		s    *topology.SampleResult
	}{{"46", set.T46}, {"63", set.T63}} {
		fmt.Printf("\n%s-AS topology:\n", topo.name)
		if err := sweepAndPrint(topo.s, topo.name, 1, modes, seed, maxPct, cold, forge); err != nil {
			return err
		}
	}
	return nil
}

// outputCSV switches sweepAndPrint to CSV emission; sweepParallelism
// bounds concurrent simulation runs (0 = GOMAXPROCS); roaCoverage is
// the simulator-side RPKI deployment fraction (0 = no ROAs);
// internetScales overrides experiment 4's topology sizes (-scale).
var (
	outputCSV        bool
	sweepParallelism int
	roaCoverage      float64
	internetScales   []int
)

func sweepAndPrint(topo *topology.SampleResult, name string, numOrigins int,
	modes []experiment.ModeSpec, seed int64, maxPct float64, cold, forge bool) error {
	counts := experiment.AttackerCountsFor(topo, maxPct)
	return sweepAndPrintCounts(topo, name, numOrigins, modes, seed, counts, cold, forge, 0, 0)
}

// sweepAndPrintCounts runs one sweep over explicit attacker counts and
// prints it; originSets/attackerSets 0 means the paper's 3x5 scheme.
func sweepAndPrintCounts(topo *topology.SampleResult, name string, numOrigins int,
	modes []experiment.ModeSpec, seed int64, counts []int, cold, forge bool,
	originSets, attackerSets int) error {
	res, err := experiment.Sweep(experiment.SweepConfig{
		Topology:          topo,
		TopologyName:      name,
		NumOrigins:        numOrigins,
		AttackerCounts:    counts,
		Modes:             modes,
		Seed:              seed,
		ColdStart:         cold,
		ForgeSupersetList: forge,
		ROACoverage:       roaCoverage,
		Parallelism:       sweepParallelism,
		OriginSets:        originSets,
		AttackerSets:      attackerSets,
	})
	if err != nil {
		return err
	}
	if outputCSV {
		return experiment.WriteCSV(os.Stdout, res)
	}
	header := fmt.Sprintf("%-10s %-10s", "attackers", "pct")
	for _, m := range res.Modes {
		header += fmt.Sprintf(" %22s", m.Label)
	}
	fmt.Println(header)
	fmt.Println(strings.Repeat("-", len(header)))
	for _, p := range res.Points {
		row := fmt.Sprintf("%-10d %-10.1f", p.NumAttackers, p.AttackerPct)
		for mi := range res.Modes {
			row += fmt.Sprintf(" %21.2f%%", p.MeanFalsePct[mi])
		}
		fmt.Println(row)
	}
	if roaCoverage > 0 {
		fmt.Printf("\nfalse-alarm rate at %.0f%% ROA coverage (share of alarms not classed likely-hijack):\n",
			100*roaCoverage)
		fmt.Println(header)
		fmt.Println(strings.Repeat("-", len(header)))
		for _, p := range res.Points {
			row := fmt.Sprintf("%-10d %-10.1f", p.NumAttackers, p.AttackerPct)
			for mi := range res.Modes {
				var total uint64
				for _, v := range p.AlarmClassTotals[mi] {
					total += v
				}
				if total == 0 {
					row += fmt.Sprintf(" %22s", "-")
					continue
				}
				row += fmt.Sprintf(" %21.2f%%", p.FalseAlarmPct[mi])
			}
			fmt.Println(row)
		}
	}
	return nil
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "es"
}
