package main

import "testing"

func TestRunExperiments(t *testing.T) {
	for exp := 1; exp <= 3; exp++ {
		if err := run(exp, 42, 1, 6 /* small sweep */, true, false, 0); err != nil {
			t.Fatalf("experiment %d: %v", exp, err)
		}
	}
	if err := run(9, 42, 1, 6, true, false, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
	outputCSV = true
	defer func() { outputCSV = false }()
	if err := run(1, 42, 1, 6, true, false, 0); err != nil {
		t.Fatalf("csv mode: %v", err)
	}
}

func TestRunParallelismFlag(t *testing.T) {
	if err := run(1, 42, 1, 6, true, false, -1); err == nil {
		t.Error("negative parallelism accepted")
	}
	if err := run(1, 42, 1, 6, true, false, 2); err != nil {
		t.Fatalf("parallelism 2: %v", err)
	}
}
