package main

import "testing"

func TestParseScales(t *testing.T) {
	sizes, err := parseScales(" 10000, 30000 ,70000")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 10000 || sizes[2] != 70000 {
		t.Errorf("sizes = %v", sizes)
	}
	for _, bad := range []string{"", "abc", "10,-3", "2"} {
		if _, err := parseScales(bad); err == nil {
			t.Errorf("parseScales(%q) accepted", bad)
		}
	}
}

func TestRunExperiments(t *testing.T) {
	for exp := 1; exp <= 3; exp++ {
		if err := run(exp, 42, 1, 6 /* small sweep */, true, false, 0); err != nil {
			t.Fatalf("experiment %d: %v", exp, err)
		}
	}
	if err := run(9, 42, 1, 6, true, false, 0); err == nil {
		t.Error("unknown experiment accepted")
	}
	internetScales = []int{150, 300}
	defer func() { internetScales = nil }()
	if err := run(4, 42, 2, 6, true, false, 0); err != nil {
		t.Fatalf("experiment 4: %v", err)
	}
	outputCSV = true
	defer func() { outputCSV = false }()
	if err := run(1, 42, 1, 6, true, false, 0); err != nil {
		t.Fatalf("csv mode: %v", err)
	}
}

func TestRunParallelismFlag(t *testing.T) {
	if err := run(1, 42, 1, 6, true, false, -1); err == nil {
		t.Error("negative parallelism accepted")
	}
	if err := run(1, 42, 1, 6, true, false, 2); err != nil {
		t.Fatalf("parallelism 2: %v", err)
	}
}
