package main

import "testing"

func TestRunExperiments(t *testing.T) {
	for exp := 1; exp <= 3; exp++ {
		if err := run(exp, 42, 1, 6 /* small sweep */, true, false); err != nil {
			t.Fatalf("experiment %d: %v", exp, err)
		}
	}
	if err := run(9, 42, 1, 6, true, false); err == nil {
		t.Error("unknown experiment accepted")
	}
	outputCSV = true
	defer func() { outputCSV = false }()
	if err := run(1, 42, 1, 6, true, false); err != nil {
		t.Fatalf("csv mode: %v", err)
	}
}
