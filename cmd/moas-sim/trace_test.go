package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunTraceDeterministic asserts the acceptance property of -trace:
// the same seed produces byte-identical output (all timestamps are
// virtual, no wall clock or map-iteration order leaks in).
func TestRunTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := runTrace(&a, 42, false); err != nil {
		t.Fatal(err)
	}
	if err := runTrace(&b, 42, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different -trace output")
	}

	out := a.String()
	for _, want := range []string{
		"== normal BGP (detection off) ==",
		"== full MOAS detection ==",
		"timeline (",
		"adoption (25 nodes):",
		"alarm #0: MOAS conflict",
		"FALSE route via the attacker",
		"rejected 1 forged announcement",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// A different seed picks different actors, so the trace must differ.
	var c bytes.Buffer
	if err := runTrace(&c, 43, false); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds produced identical output")
	}
}
