package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/astypes"
	"repro/internal/experiment"
	"repro/internal/topology"
	"repro/internal/trace"
)

// runTrace replays one hijack on the 25-AS topology twice — normal BGP
// and full MOAS detection — with a flight recorder attached, and writes
// the per-prefix propagation timeline, the per-AS adoption outcome, and
// the forensic alarm bundles. All timestamps are virtual simulation
// time, so the same seed produces byte-identical output.
func runTrace(w io.Writer, seed int64, forge bool) error {
	set, err := topology.BuildPaperTopologies(seed)
	if err != nil {
		return err
	}
	topo := set.T25
	scens, err := experiment.Selections(topo, 1, 1, 1, 1, seed)
	if err != nil {
		return err
	}
	scen := scens[0]
	legit, attacker := scen.Origins[0], scen.Attackers[0]
	fmt.Fprintf(w, "Propagation trace: 25-AS topology, seed %d\n", seed)
	fmt.Fprintf(w, "victim prefix %s, origin AS%d, attacker AS%d, forged superset list: %v\n",
		experiment.VictimPrefix, legit, attacker, forge)

	modes := []struct {
		label string
		det   experiment.Detection
	}{
		{"normal BGP (detection off)", experiment.DetectionOff},
		{"full MOAS detection", experiment.DetectionFull},
	}
	for _, m := range modes {
		rec := trace.NewRecorder(8192, trace.WithoutWallClock())
		res, err := experiment.Run(experiment.RunConfig{
			Topology:          topo,
			Scenario:          scen,
			Detection:         m.det,
			ForgeSupersetList: forge,
			Recorder:          rec,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n== %s ==\n", m.label)
		writeTimeline(w, rec)
		writeAdoption(w, topo.Graph.Nodes(), rec, legit, attacker)
		fmt.Fprintf(w, "summary: %d/%d non-attacker ASes on the false route, %d alarms, %d messages, converged at %s\n",
			res.Census.AdoptedFalse, res.Census.NonAttackers, res.Alarms,
			res.Messages, time.Duration(res.ConvergeVirtual))
		for _, b := range rec.Alarms() {
			fmt.Fprint(w, string(trace.AppendBundleText(nil, &b)))
		}
	}
	return nil
}

func writeTimeline(w io.Writer, rec *trace.Recorder) {
	events := rec.Events()
	fmt.Fprintf(w, "timeline (%d events, %d dropped):\n", len(events), rec.Dropped())
	var buf []byte
	for i := range events {
		buf = trace.AppendEventText(buf[:0], &events[i])
		fmt.Fprint(w, string(buf))
	}
}

// writeAdoption derives each AS's final route for the victim prefix
// from its last rib event: the origin of the installed best route says
// whether the node ended on the valid route or the forged one.
func writeAdoption(w io.Writer, nodes []astypes.ASN, rec *trace.Recorder, legit, attacker astypes.ASN) {
	last := make(map[astypes.ASN]trace.Event)
	rejected := make(map[astypes.ASN]int)
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindRIB:
			last[e.Node] = e
		case trace.KindValidate:
			if e.Detail == trace.DetailRejected {
				rejected[e.Node]++
			}
		}
	}
	fmt.Fprintf(w, "adoption (%d nodes):\n", len(nodes))
	for _, asn := range nodes {
		var state string
		e, ok := last[asn]
		switch {
		case asn == attacker:
			state = "attacker"
		case !ok, e.Detail == trace.DetailWithdrawn:
			state = "no route"
		case e.Origin == attacker:
			state = "FALSE route via the attacker"
		case e.Origin == legit:
			state = "valid route"
		default:
			state = fmt.Sprintf("route via AS%d", e.Origin)
		}
		if n := rejected[asn]; n > 0 {
			suffix := ""
			if n != 1 {
				suffix = "s"
			}
			state += fmt.Sprintf(" (rejected %d forged announcement%s)", n, suffix)
		}
		fmt.Fprintf(w, "  AS%-5d %s\n", uint32(asn), state)
	}
}
