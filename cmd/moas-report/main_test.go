package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.md")
	if err := run(42, 1997, 8, true /* skip measurement */, false, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 9") {
		t.Error("report missing Figure 9 section")
	}
}
