// Command moas-report runs the paper's entire evaluation — the §3
// measurement study and the §5 simulation study — and emits a single
// Markdown report with the measured series beside the paper's reported
// values. It is the one-shot regeneration of EXPERIMENTS.md's data.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	var (
		seed        = flag.Int64("seed", 42, "simulation seed")
		measureSeed = flag.Int64("measure-seed", 1997, "measurement seed")
		maxPct      = flag.Float64("max-attacker-pct", 35, "largest attacker percentage")
		skipMeasure = flag.Bool("skip-measurement", false, "skip the §3 measurement study")
		skipSim     = flag.Bool("skip-simulation", false, "skip the §5 simulation study")
		out         = flag.String("o", "", "write the report to a file instead of stdout")
		alarms      = flag.Bool("alarms", false, "render the forensic MOAS alarm bundles of one traced hijack as a table instead of the full report")
		forge       = flag.Bool("forge-list", false, "with -alarms: the attacker forges a superset MOAS list (§4.1)")
		roas        = flag.Bool("roas", false, "with -alarms: cover the victim prefix with ROAs so ROV classifies the bundles likely-hijack")
	)
	flag.Parse()
	if *alarms {
		if err := runAlarms(*seed, *forge, *roas, *out); err != nil {
			fmt.Fprintln(os.Stderr, "moas-report:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*seed, *measureSeed, *maxPct, *skipMeasure, *skipSim, *out); err != nil {
		fmt.Fprintln(os.Stderr, "moas-report:", err)
		os.Exit(1)
	}
}

func run(seed, measureSeed int64, maxPct float64, skipMeasure, skipSim bool, out string) error {
	rep, err := report.Run(report.Options{
		Seed:            seed,
		MeasureSeed:     measureSeed,
		MaxAttackerPct:  maxPct,
		SkipMeasurement: skipMeasure,
		SkipSimulation:  skipSim,
		ColdStart:       true,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteMarkdown(w)
}

func runAlarms(seed int64, forge, withROAs bool, out string) error {
	bundles, err := report.AlarmStudy(seed, forge, withROAs)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report.WriteAlarmTable(w, bundles)
}
