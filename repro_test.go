package repro_test

import (
	"net"
	"testing"
	"time"

	"repro"
)

// TestFacadeSimulationEndToEnd drives the whole public API the way the
// quickstart does: build a topology, run a hijack with detection, check
// the census.
func TestFacadeSimulationEndToEnd(t *testing.T) {
	g := repro.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	g.AddEdge(3, 4)
	prefix := repro.MustPrefix(0x0a000000, 8)
	valid := repro.NewList(1)

	net, err := repro.NewSimNetwork(repro.SimConfig{
		Topology: g,
		Resolver: repro.ResolverFunc(func(p repro.Prefix) (repro.List, bool) {
			return valid, p == prefix
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range net.Nodes() {
		if asn != 4 {
			if err := net.SetMode(asn, repro.SimModeDetect); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := net.Originate(1, prefix, repro.List{}); err != nil {
		t.Fatal(err)
	}
	if err := net.OriginateInvalid(4, prefix, repro.List{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	census := net.TakeCensus(prefix, valid)
	if census.AdoptedFalse != 0 {
		t.Errorf("census = %+v", census)
	}
	if census.AlarmedNodes == 0 {
		t.Error("no alarms raised")
	}
}

// TestFacadeExperimentHarness runs a small sweep through the facade.
func TestFacadeExperimentHarness(t *testing.T) {
	set, err := repro.BuildPaperTopologies(42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Sweep(repro.SweepConfig{
		Topology:       set.T25,
		TopologyName:   "25",
		NumOrigins:     1,
		AttackerCounts: repro.AttackerCountsFor(set.T25, 10),
		Modes: []repro.ModeSpec{
			{Label: "normal", Detection: repro.DetectionOff},
			{Label: "full", Detection: repro.DetectionFull},
		},
		Seed:      1,
		ColdStart: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.MeanFalsePct[1] > p.MeanFalsePct[0] {
			t.Errorf("detection worse than normal at %d attackers", p.NumAttackers)
		}
	}
}

// TestFacadeMeasurement runs a short measurement window through the
// facade types.
func TestFacadeMeasurement(t *testing.T) {
	cfg := repro.DefaultDumpConfig()
	cfg.Days = 60
	cfg.SingleOriginPrefixes = 200
	cfg.BaseCases = 30
	cfg.GrowthCases = 10
	cfg.ChurnCases = 10
	cfg.ShortFaultCases = 5
	cfg.ExchangePointCases = 1
	cfg.Events = nil
	gen, err := repro.NewDumpGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := repro.MeasureMOAS(gen)
	if err != nil {
		t.Fatal(err)
	}
	s := analysis.Summarize()
	if s.TotalCases == 0 {
		t.Error("no MOAS cases measured")
	}
}

// TestFacadeLiveSpeakersWithMOASRR exercises Speaker + MOASRRStore +
// Monitor together: the full deployment story of §4.2/§4.4.
func TestFacadeLiveSpeakersWithMOASRR(t *testing.T) {
	prefix := repro.MustPrefix(0xc0000000, 8)
	store := repro.NewMOASRRStore(repro.WithSigningKey([]byte("k")))
	store.Register(prefix, repro.NewList(10))

	mkSpeaker := func(asn repro.ASN, mode repro.ValidationMode) *repro.Speaker {
		s, err := repro.NewSpeaker(repro.SpeakerConfig{
			AS:         asn,
			RouterID:   uint32(asn),
			Validation: mode,
			Resolver:   store,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	origin := mkSpeaker(10, repro.ValidationOff)
	transit := mkSpeaker(20, repro.ValidationDrop)
	attacker := mkSpeaker(30, repro.ValidationOff)

	link := func(a, b *repro.Speaker) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		a.Listen(ln)
		if err := b.Connect(ln.Addr().String(), a.AS()); err != nil {
			t.Fatal(err)
		}
	}
	link(transit, origin)
	link(transit, attacker)

	origin.Originate(prefix, repro.List{})
	waitFor(t, func() bool { return transit.Table().Best(prefix) != nil })
	attacker.Originate(prefix, repro.List{})
	waitFor(t, func() bool { return len(transit.Alarms()) > 0 })

	best := transit.Table().Best(prefix)
	if best == nil || best.OriginAS() != 10 {
		t.Errorf("transit best = %+v, want origin 10", best)
	}

	// The off-line monitor reaches the same verdict from the RIB.
	mon := repro.NewMonitor(repro.WithMonitorResolver(store))
	for _, r := range transit.Table().BestRoutes() {
		mon.ObserveEntry("transit", r.Prefix, r.Path, r.Communities)
	}
	mon.ObserveEntry("transit", prefix, repro.NewSeqPath(30), nil)
	cases := mon.MOASCases()
	if len(cases) != 1 || !cases[0].Invalid {
		t.Errorf("monitor cases = %+v", cases)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout")
}
